//! Churn-scenario driver: the `dharma-maint` evaluation workload.
//!
//! The DHT survey (Hassanzadeh-Nazarabadi et al.) identifies churn-driven
//! maintenance as *the* cost/availability trade-off of deployed DHTs; this
//! driver makes it measurable for DHARMA. Over any Zipf-shaped GET workload
//! it layers **true membership churn**: node sessions end in a permanent
//! departure — crash-style [`dharma_net::SimNet::remove`] (state lost, no
//! warning) or, for a seeded [`ChurnConfig::graceful_fraction`] of them,
//! a graceful [`dharma_net::SimNet::leave`] (parting key handoff + `Leave`
//! notices first) — and, one seeded downtime later, a **fresh-identity**
//! node [`dharma_net::SimNet::spawn`]s and bootstraps in its place. Session and
//! downtime lengths are drawn from seeded Weibull distributions (shape 1 =
//! exponential, the memoryless baseline; shape < 1 = the heavy-tailed
//! session lengths measured in deployed P2P systems).
//!
//! Three outcomes are reported, for repair on vs off:
//!
//! * **lookup success rate** — GETs answering with the value (after
//!   bounded retries from another live node, mirroring the client layer's
//!   retry-on-timeout);
//! * **data availability** — a periodic trace of the fraction of keys with
//!   at least one live authoritative holder, plus the end-of-run count of
//!   *lost* records (no live holder after churn stops and repair settles);
//! * **maintenance overhead** — probes, handoffs and re-replications, and
//!   total datagrams per GET.
//!
//! Node 0 never churns: it is the rendezvous host every newcomer seeds
//! from (a deployment would use any stable bootstrap set). Everything is
//! driven by two seeded RNGs (scenario + simulator), so a fixed
//! [`ChurnConfig`] is **bit-identical** across runs — the property the
//! determinism tests pin down.

use dharma_cache::{CacheConfig, FreshConfig};
use dharma_dataset::Zipf;
use dharma_kademlia::{Contact, KadConfig, KadOutput, KademliaNode, MaintConfig, StoredEntry};
use dharma_net::{NetCounters, NodeAddr, SimConfig, SimNet};
use dharma_types::{sha1, FxHashMap, Id160};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Churn-scenario parameters.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Overlay size at t = 0 (held roughly constant: each departure
    /// schedules a replacement join).
    pub nodes: usize,
    /// Kademlia bucket size / replication factor.
    pub k: usize,
    /// Distinct tag-block keys in the workload.
    pub keys: usize,
    /// Zipf exponent of the GET key distribution.
    pub zipf_s: f64,
    /// Index-side filtering limit on every GET.
    pub top_n: u32,
    /// Virtual duration of the churn + workload phase, µs.
    pub horizon_us: u64,
    /// One GET is issued every this many µs.
    pub op_interval_us: u64,
    /// Mean node-session length, µs (time between join and departure).
    pub mean_session_us: u64,
    /// Mean downtime before the replacement join, µs.
    pub mean_downtime_us: u64,
    /// Weibull shape of the session distribution (1.0 = exponential).
    pub session_shape: f64,
    /// Maintenance (repair) configuration; `None` = repair disabled, the
    /// ablation's baseline. Adaptive cadence rides in
    /// [`MaintConfig::adaptive`].
    pub repair: Option<MaintConfig>,
    /// Fraction of departures that are *graceful* (seeded per departure):
    /// the node hands its keys off and sends `Leave` notices before going,
    /// instead of vanishing crash-style. 0.0 (the default) reproduces the
    /// PR-3 crash-only scenario; 1.0 models an orderly fleet drain.
    pub graceful_fraction: f64,
    /// Availability is sampled every this many µs.
    pub sample_interval_us: u64,
    /// How often a failed GET is reissued from another live node before
    /// counting as a lookup failure.
    pub get_retries: u32,
    /// Master seed (drives scenario sampling and the simulator).
    pub seed: u64,
    /// Hot-block caching on every node (the A8-at-scale scenario); `None`
    /// keeps the plain churn overlay.
    pub cache: Option<CacheConfig>,
    /// Version gossip & cache-aware routing on every node; `None` keeps
    /// the TTL-only cache protocol.
    pub freshness: Option<FreshConfig>,
    /// Event-engine shards (1 = the serial engine, bit-identical to all
    /// prior churn numbers; ≥2 runs the window-barrier sharded engine,
    /// whose results are invariant in the shard count but a *different*
    /// deterministic sequence than the serial engine).
    pub shards: usize,
    /// Keys written per populate settle-window. 1 (the default) settles
    /// after every write — the historical, bit-identical populate. At
    /// thousands of keys raise it so populate costs `keys / write_batch`
    /// settle windows instead of one per key.
    pub write_batch: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            nodes: 64,
            k: 20,
            keys: 32,
            zipf_s: 1.2,
            top_n: 0,
            horizon_us: 300_000_000,     // 5 virtual minutes
            op_interval_us: 250_000,     // 4 GETs/s
            mean_session_us: 60_000_000, // churn: ~5 sessions/node over the run
            mean_downtime_us: 10_000_000,
            session_shape: 1.0,
            repair: Some(MaintConfig::default()),
            graceful_fraction: 0.0,
            sample_interval_us: 5_000_000,
            get_retries: 2,
            seed: 42,
            cache: None,
            freshness: None,
            shards: 1,
            write_batch: 1,
        }
    }
}

impl ChurnConfig {
    /// The maintenance configuration the "repair on" ablation rows use:
    /// probes every 2 s, repair every 15 s, handoff on. Demotion stays
    /// off here: the ablation isolates the repair guarantee, and the
    /// stale beyond-`k` copies demotion would reclaim double as a churn
    /// safety net (dropping them costs ~1 point of lookup success at
    /// moderate churn — the space/traffic-vs-redundancy dial
    /// [`MaintConfig::demote_interval_us`] exposes; long-running
    /// deployments want it on, which is the [`MaintConfig`] default).
    pub fn ablation_repair() -> MaintConfig {
        MaintConfig::builder()
            .probe_interval_us(2_000_000)
            .repair_interval_us(15_000_000)
            .join_handoff(true)
            .demote_interval_us(None)
            .build()
            .expect("ablation repair config is in range")
    }

    /// The churn-adaptive counterpart of [`Self::ablation_repair`]: same
    /// tightest cadence (so a churning overlay gets the same protection),
    /// but scaled up to 5× lazier as the observed departure rate falls.
    /// `hot_weight` is tuned so the moderate-churn scenario (one
    /// departure/s observed per node) pins the cadence to the min bounds
    /// while a near-idle overlay coasts at the max.
    pub fn ablation_adaptive() -> MaintConfig {
        MaintConfig::builder()
            .probe_interval_us(2_000_000) // unused: adaptive cadence below
            .repair_interval_us(15_000_000)
            .join_handoff(true)
            .demote_interval_us(None)
            .adaptive(Some(dharma_kademlia::AdaptConfig {
                probe_min_us: 2_000_000,
                probe_max_us: 6_000_000,
                repair_min_us: 15_000_000,
                repair_max_us: 60_000_000,
                half_life_us: 20_000_000,
                hot_weight: 5.0,
                leave_weight: 0.1,
                repair_budget: 16,
            }))
            .build()
            .expect("ablation adaptive config is in range")
    }
}

/// What one churn replay measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnReport {
    /// GET operations issued (excluding retries).
    pub gets: u64,
    /// GETs that returned the value (possibly after retries).
    pub gets_ok: u64,
    /// Retry attempts consumed across all GETs.
    pub retries: u64,
    /// `gets_ok / gets`.
    pub lookup_success: f64,
    /// `(time µs, fraction of keys with ≥ 1 live authoritative holder)`,
    /// sampled every `sample_interval_us` — the availability curve.
    pub availability_trace: Vec<(u64, f64)>,
    /// Mean of the availability trace.
    pub mean_availability: f64,
    /// Keys with **no** live authoritative holder after churn stopped and
    /// repair settled — permanently lost records.
    pub lost_records: usize,
    /// Permanent departures processed.
    pub departures: u64,
    /// Departures that went through the graceful-leave protocol (the rest
    /// were crash-style removals).
    pub graceful_departures: u64,
    /// Fresh-identity joins processed.
    pub joins: u64,
    /// Liveness probes sent.
    pub probes: u64,
    /// Join-time key handoffs pushed.
    pub handoffs: u64,
    /// Repair re-replication pushes.
    pub rereplications: u64,
    /// Graceful-leave notices sent.
    pub leave_notices: u64,
    /// Parting key handoffs pushed by gracefully departing nodes.
    pub leave_handoffs: u64,
    /// Total datagrams sent over the whole run.
    pub messages_total: u64,
    /// Maintenance datagrams (probes + handoffs + re-replications) per
    /// issued GET — the overhead the repair guarantee costs.
    pub maint_msgs_per_get: f64,
    /// Simulator events fired over the whole run (deliveries + timers) —
    /// the numerator of the engine's events/sec throughput metric.
    /// Deterministic per seed and engine discipline, so it participates in
    /// the report's equality-based determinism checks.
    pub events_processed: u64,
}

/// Scenario events, processed in `(time, seq)` order between simulator
/// bursts.
#[derive(Clone, Debug)]
enum ChurnEvent {
    /// Node `addr` departs permanently.
    Depart(NodeAddr),
    /// A fresh-identity replacement joins.
    Join,
    /// Issue the next workload GET.
    IssueGet,
    /// Sample the availability curve.
    Sample,
}

/// A scheduled scenario event. The heap is a min-heap on `(at, seq)` —
/// `seq` is unique, so the order is total and exactly the `(time, seq)`
/// order the old linear-scan scheduler produced, at O(log n) per op
/// instead of O(n).
struct Sched {
    at: u64,
    seq: u64,
    ev: ChurnEvent,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the schedule needs a min.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An issued GET the driver is still waiting on.
#[derive(Clone, Copy, Debug)]
struct InflightGet {
    key_idx: usize,
    issued_at_us: u64,
    attempts: u32,
    coordinator: NodeAddr,
}

/// Weibull sample with the given mean: `scale · (−ln u)^(1/shape)` where
/// `scale = mean / Γ(1 + 1/shape)`. Shape 1 reduces to the exponential.
fn sample_weibull(rng: &mut StdRng, mean_us: u64, shape: f64) -> u64 {
    let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    let scale = mean_us as f64 / gamma_1p(1.0 / shape);
    (scale * (-u.ln()).powf(1.0 / shape)).round().max(1.0) as u64
}

/// Γ(1 + x) for the scenario-scaling range (the shapes in use are
/// 0.5..=2, so x ∈ (0, 2]): the Abramowitz & Stegun 6.1.36 eight-term
/// minimax polynomial for Γ(1 + x) on [0, 1] (|ε| < 3·10⁻⁷ — not a Taylor
/// expansion of ln Γ), extended to x > 1 by the recurrence
/// Γ(1 + x) = x · Γ(x).
fn gamma_1p(x: f64) -> f64 {
    // Γ(1+x) = x·Γ(x); use the Weierstrass product truncation via the
    // well-known polynomial min-max fit on [0,1] (Abramowitz & Stegun
    // 6.1.36, |ε| < 3e-7), extended by the recurrence for x > 1.
    if x > 1.0 {
        return x * gamma_1p(x - 1.0);
    }
    const C: [f64; 8] = [
        -0.577_191_652,
        0.988_205_891,
        -0.897_056_937,
        0.918_206_857,
        -0.756_704_078,
        0.482_199_394,
        -0.193_527_818,
        0.035_868_343,
    ];
    let mut acc = 1.0;
    let mut p = 1.0;
    for c in C {
        p *= x;
        acc += c * p;
    }
    acc
}

/// The per-node protocol configuration of a churn run.
fn kad_config(cfg: &ChurnConfig, counters: NetCounters) -> KadConfig {
    KadConfig {
        k: cfg.k,
        alpha: 3,
        rpc_timeout_us: 300_000,
        reply_budget: 60_000,
        ping_before_evict: true,
        maintenance: cfg.repair.clone(),
        cache: cfg.cache.clone(),
        freshness: cfg.freshness.clone(),
        counters,
        ..KadConfig::default()
    }
}

/// Replays the churn scenario of [`ChurnConfig`] and reports lookup
/// success, the availability curve, and maintenance overhead.
pub fn simulate_churn(cfg: &ChurnConfig) -> ChurnReport {
    assert!(cfg.nodes >= 4, "need an overlay");
    assert!(cfg.keys >= 1 && cfg.horizon_us > 0 && cfg.op_interval_us > 0);
    let mut net: SimNet<KademliaNode> = SimNet::new(SimConfig {
        latency_min_us: 1_000,
        latency_max_us: 10_000,
        drop_rate: 0.0,
        mtu: 64 * 1024,
        seed: cfg.seed,
        shards: cfg.shards.max(1),
        topology: None,
    });
    net.enable_parallel();
    let counters = net.counters();
    let kad = kad_config(cfg, counters.clone());
    // Scenario RNG: node identities, session/downtime draws, workload.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A9);

    // ----- build + bootstrap ------------------------------------------
    let mut live: Vec<NodeAddr> = Vec::new();
    let rendezvous: Contact;
    {
        let id = Id160::random(&mut rng);
        let addr = net.add_node(KademliaNode::new(id, 0, kad.clone()));
        rendezvous = net.node(addr).contact().clone();
        live.push(addr);
    }
    for i in 1..cfg.nodes {
        let id = Id160::random(&mut rng);
        let addr = net.add_node(KademliaNode::new(id, i as NodeAddr, kad.clone()));
        net.node_mut(addr).add_seed(rendezvous.clone());
        net.with_node(addr, |n, ctx| {
            n.bootstrap(ctx);
        });
        live.push(addr);
    }
    // Join lookups need longer to propagate routing state in big overlays;
    // 2 ms/node leaves the historical 2 s untouched up to 1 000 nodes.
    net.run_until(2_000_000.max(cfg.nodes as u64 * 2_000));
    net.take_completions();

    // ----- populate the tag blocks ------------------------------------
    let keys: Vec<Id160> = (0..cfg.keys)
        .map(|i| sha1(format!("churn-block-{i}").as_bytes()))
        .collect();
    let write_batch = cfg.write_batch.max(1);
    for (i, key) in keys.iter().enumerate() {
        let writer = live[i % live.len()];
        let entries: Vec<StoredEntry> = (0..6)
            .map(|e| StoredEntry {
                name: format!("entry-{e}"),
                weight: (e + 1) * 2,
            })
            .collect();
        net.with_node(writer, |n, ctx| {
            n.append_many(ctx, *key, entries);
        });
        // Writes settle while virtual time stays tight (no fast-forward
        // through maintenance timers). `write_batch == 1` settles after
        // every write — the historical populate; larger batches amortize
        // the settle window across a batch of writers.
        if (i + 1) % write_batch == 0 {
            net.run_until(net.now_us() + 300_000);
        }
    }
    if !keys.len().is_multiple_of(write_batch) {
        net.run_until(net.now_us() + 300_000);
    }
    net.run_until(net.now_us() + 1_000_000);
    net.take_completions();

    // ----- schedule the scenario --------------------------------------
    let t0 = net.now_us();
    let horizon = t0 + cfg.horizon_us;
    let mut schedule: BinaryHeap<Sched> = BinaryHeap::new();
    let mut schedule_seq = 0u64;
    let push = |schedule: &mut BinaryHeap<Sched>, seq: &mut u64, at, ev| {
        *seq += 1;
        schedule.push(Sched { at, seq: *seq, ev });
    };
    // Node 0 is the immortal rendezvous; everyone else gets a session.
    for &addr in live.iter().skip(1) {
        let session = sample_weibull(&mut rng, cfg.mean_session_us, cfg.session_shape);
        push(
            &mut schedule,
            &mut schedule_seq,
            t0 + session,
            ChurnEvent::Depart(addr),
        );
    }
    push(
        &mut schedule,
        &mut schedule_seq,
        t0 + cfg.op_interval_us,
        ChurnEvent::IssueGet,
    );
    push(&mut schedule, &mut schedule_seq, t0, ChurnEvent::Sample);

    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    // Keyed by `(coordinator, op)`: op ids are allocated per node and
    // collide across coordinators, so the bare id is ambiguous once many
    // GETs are in flight from different nodes (at 1k nodes the collisions
    // silently overwrote ~25% of the entries).
    let mut inflight: FxHashMap<(NodeAddr, u64), InflightGet> = FxHashMap::default();
    let mut gets = 0u64;
    let mut gets_ok = 0u64;
    let mut retries = 0u64;
    let mut departures = 0u64;
    let mut graceful_departures = 0u64;
    let mut joins = 0u64;
    let mut next_join_slot = cfg.nodes as u64;
    let mut trace: Vec<(u64, f64)> = Vec::new();

    let availability = |net: &SimNet<KademliaNode>, live: &[NodeAddr], keys: &[Id160]| -> f64 {
        let holders_alive = |key: &Id160| {
            live.iter()
                .any(|&a| net.is_alive(a) && net.node(a).storage().contains(key))
        };
        keys.iter().filter(|k| holders_alive(k)).count() as f64 / keys.len() as f64
    };

    // GETs unanswered for this long are retried/failed (covers ops whose
    // coordinator departed mid-lookup, taking its RPC timers with it).
    let get_deadline_us = 2_000_000u64;

    while schedule.peek().is_some_and(|s| s.at <= horizon) {
        let Sched { at, ev, .. } = schedule.pop().expect("peeked");
        net.run_until(at.max(net.now_us()));

        // Settle completed GETs (and expire overdue ones) before the event.
        let mut done: Vec<((NodeAddr, u64), bool)> = Vec::new();
        for (addr, op, out) in net.take_completions_from() {
            if inflight.contains_key(&(addr, op)) {
                done.push((
                    (addr, op),
                    matches!(out, KadOutput::Value { value: Some(_), .. }),
                ));
            }
        }
        let now = net.now_us();
        // dharma-lint: allow(D3): collected then sorted by (addr, op) — a total order
        let mut overdue: Vec<(NodeAddr, u64)> = inflight
            .iter()
            .filter(|(_, g)| now.saturating_sub(g.issued_at_us) > get_deadline_us)
            .map(|(&key, _)| key)
            .collect();
        // Expired GETs retry (and draw RNG) in whatever order this list
        // yields, so canonicalize it before the order reaches the trace.
        overdue.sort_unstable();
        for key in overdue {
            done.push((key, false));
        }
        for (key, ok) in done {
            let Some(get) = inflight.remove(&key) else {
                continue;
            };
            if ok {
                gets_ok += 1;
            } else if get.attempts < cfg.get_retries {
                // Reissue from a different live node.
                retries += 1;
                let candidates: Vec<NodeAddr> = live
                    .iter()
                    .copied()
                    .filter(|&a| net.is_alive(a) && a != get.coordinator)
                    .collect();
                if let Some(&addr) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                    let key = keys[get.key_idx];
                    let op = net.with_node(addr, |n, ctx| n.get(ctx, key, cfg.top_n));
                    inflight.insert(
                        (addr, op),
                        InflightGet {
                            key_idx: get.key_idx,
                            issued_at_us: net.now_us(),
                            attempts: get.attempts + 1,
                            coordinator: addr,
                        },
                    );
                }
            }
        }

        match ev {
            ChurnEvent::Depart(addr) => {
                if net.is_removed(addr) {
                    continue;
                }
                if rng.gen::<f64>() < cfg.graceful_fraction {
                    net.leave(addr, |n, ctx| n.leave(ctx));
                    graceful_departures += 1;
                } else {
                    net.remove(addr);
                }
                live.retain(|&a| a != addr);
                departures += 1;
                let downtime = sample_weibull(&mut rng, cfg.mean_downtime_us, 1.0);
                push(
                    &mut schedule,
                    &mut schedule_seq,
                    net.now_us() + downtime,
                    ChurnEvent::Join,
                );
            }
            ChurnEvent::Join => {
                let id = Id160::random(&mut rng);
                let node = KademliaNode::new(id, next_join_slot as NodeAddr, kad.clone());
                let addr = net.spawn(node);
                next_join_slot += 1;
                net.node_mut(addr).add_seed(rendezvous.clone());
                net.with_node(addr, |n, ctx| {
                    n.bootstrap(ctx);
                });
                live.push(addr);
                joins += 1;
                let session = sample_weibull(&mut rng, cfg.mean_session_us, cfg.session_shape);
                push(
                    &mut schedule,
                    &mut schedule_seq,
                    net.now_us() + session,
                    ChurnEvent::Depart(addr),
                );
            }
            ChurnEvent::IssueGet => {
                let key_idx = zipf.sample(&mut rng);
                // `live` holds exactly the alive nodes (departures retain it,
                // joins push) — an O(1) pick draws the same RNG sequence the
                // old O(n) filter-then-index did, which kept only alive
                // entries of `live` and therefore all of them.
                debug_assert!(live.iter().all(|&a| net.is_alive(a)));
                let addr = live[rng.gen_range(0..live.len())];
                let key = keys[key_idx];
                let op = net.with_node(addr, |n, ctx| n.get(ctx, key, cfg.top_n));
                gets += 1;
                inflight.insert(
                    (addr, op),
                    InflightGet {
                        key_idx,
                        issued_at_us: net.now_us(),
                        attempts: 0,
                        coordinator: addr,
                    },
                );
                push(
                    &mut schedule,
                    &mut schedule_seq,
                    net.now_us() + cfg.op_interval_us,
                    ChurnEvent::IssueGet,
                );
            }
            ChurnEvent::Sample => {
                trace.push((at - t0, availability(&net, &live, &keys)));
                push(
                    &mut schedule,
                    &mut schedule_seq,
                    at + cfg.sample_interval_us,
                    ChurnEvent::Sample,
                );
            }
        }
    }

    // ----- settle: churn stops, in-flight work and repair finish -------
    let settle = cfg
        .repair
        .as_ref()
        .map(|m| 2 * m.repair_interval_us + 2_000_000)
        .unwrap_or(3_000_000);
    net.run_until(horizon + settle);
    for (addr, op, out) in net.take_completions_from() {
        if inflight.remove(&(addr, op)).is_some()
            && matches!(out, KadOutput::Value { value: Some(_), .. })
        {
            gets_ok += 1;
        }
    }
    trace.push((net.now_us() - t0, availability(&net, &live, &keys)));

    let lost_records = keys
        .iter()
        .filter(|key| {
            !live
                .iter()
                .any(|&a| net.is_alive(a) && net.node(a).storage().contains(key))
        })
        .count();
    let mean_availability = trace.iter().map(|(_, a)| a).sum::<f64>() / trace.len() as f64;
    let maint = counters.maintenance_messages();
    ChurnReport {
        gets,
        gets_ok,
        retries,
        lookup_success: if gets == 0 {
            1.0
        } else {
            gets_ok as f64 / gets as f64
        },
        availability_trace: trace,
        mean_availability,
        lost_records,
        departures,
        graceful_departures,
        joins,
        probes: counters.probes_sent(),
        handoffs: counters.handoffs(),
        rereplications: counters.rereplications(),
        leave_notices: counters.leave_notices(),
        leave_handoffs: counters.leave_handoffs(),
        messages_total: counters.sent(),
        maint_msgs_per_get: if gets == 0 {
            0.0
        } else {
            maint as f64 / gets as f64
        },
        events_processed: net.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(repair: Option<MaintConfig>, seed: u64) -> ChurnConfig {
        ChurnConfig {
            nodes: 20,
            k: 6,
            keys: 10,
            horizon_us: 60_000_000,
            op_interval_us: 500_000,
            mean_session_us: 20_000_000,
            mean_downtime_us: 4_000_000,
            repair,
            sample_interval_us: 3_000_000,
            seed,
            ..ChurnConfig::default()
        }
    }

    fn fast_repair() -> MaintConfig {
        MaintConfig::builder()
            .probe_interval_us(1_000_000)
            .repair_interval_us(6_000_000)
            .join_handoff(true)
            .demote_interval_us(None)
            .build()
            .expect("fast repair config is in range")
    }

    #[test]
    fn same_seed_identical_availability_trace() {
        let a = simulate_churn(&small(Some(fast_repair()), 7));
        let b = simulate_churn(&small(Some(fast_repair()), 7));
        assert_eq!(a, b, "fixed seed must be bit-identical");
        let c = simulate_churn(&small(Some(fast_repair()), 8));
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn repair_keeps_records_alive_under_churn() {
        let with = simulate_churn(&small(Some(fast_repair()), 9));
        assert!(with.departures > 0 && with.joins > 0, "churn must happen");
        assert_eq!(with.lost_records, 0, "repair must not lose records");
        assert!(
            with.lookup_success > 0.95,
            "success {:.3} too low",
            with.lookup_success
        );
        assert!(with.probes > 0 && with.rereplications > 0);
    }

    #[test]
    fn disabling_repair_degrades_availability() {
        let with = simulate_churn(&small(Some(fast_repair()), 10));
        let without = simulate_churn(&small(None, 10));
        assert!(
            without.mean_availability < with.mean_availability,
            "repair off must degrade availability: {:.3} !< {:.3}",
            without.mean_availability,
            with.mean_availability
        );
        assert!(
            without.lost_records >= with.lost_records,
            "repair off loses at least as many records"
        );
    }

    #[test]
    fn graceful_departures_preserve_data() {
        let mut cfg = small(Some(fast_repair()), 11);
        cfg.graceful_fraction = 1.0;
        let rep = simulate_churn(&cfg);
        assert!(rep.departures > 0, "churn must happen");
        assert_eq!(
            rep.graceful_departures, rep.departures,
            "fraction 1.0 makes every departure graceful"
        );
        assert!(rep.leave_notices > 0 && rep.leave_handoffs > 0);
        assert_eq!(rep.lost_records, 0, "parting handoff must not lose data");
        assert!(
            rep.lookup_success > 0.95,
            "success {:.3} too low",
            rep.lookup_success
        );
    }

    #[test]
    fn sharded_engine_churn_report_invariant_in_shard_count() {
        // The whole churn pipeline — bootstrap, populate, churn, repair,
        // retries — must produce ONE deterministic report on the sharded
        // engine regardless of how many shards carve up the node set.
        // (shards=1 is the distinct legacy discipline, pinned bit-identical
        // by `same_seed_identical_availability_trace` and the smoke tests.)
        let base = |shards| {
            let mut c = small(Some(fast_repair()), 13);
            c.shards = shards;
            c
        };
        let two = simulate_churn(&base(2));
        let four = simulate_churn(&base(4));
        let eight = simulate_churn(&base(8));
        assert!(two.departures > 0 && two.joins > 0, "churn must happen");
        assert!(two.gets > 0 && two.events_processed > 0);
        assert_eq!(two, four, "2-shard vs 4-shard run diverged");
        assert_eq!(two, eight, "2-shard vs 8-shard run diverged");
    }

    #[test]
    fn batched_populate_settles_every_key() {
        // write_batch > 1 is a scale knob, not a semantics change: records
        // still replicate and the run stays churn-correct end-to-end.
        let mut cfg = small(Some(fast_repair()), 14);
        cfg.write_batch = 4;
        let rep = simulate_churn(&cfg);
        assert_eq!(rep.lost_records, 0, "batched populate must not lose data");
        assert!(
            rep.lookup_success > 0.9,
            "success {:.3} too low",
            rep.lookup_success
        );
    }

    #[test]
    fn weibull_sampling_matches_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        for shape in [0.7, 1.0, 1.5] {
            let n = 4000;
            let mean: f64 = (0..n)
                .map(|_| sample_weibull(&mut rng, 1_000_000, shape) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - 1_000_000.0).abs() < 120_000.0,
                "shape {shape}: empirical mean {mean}"
            );
        }
    }
}
