//! Consolidated CI benchmark artifact: runs the four headline ablations
//! at smoke scale and emits one `BENCH_ci.json` with the numbers the perf
//! trajectory is tracked by — cache hit ratio, lookup hops per GET,
//! maintenance messages per GET, max-load ratio, the freshness staleness
//! percentiles, the latency-aware lookup completion-time percentiles
//! (A9 baseline vs full), the event-engine throughput section (serial
//! vs sharded events/sec, peak RSS), and the real-socket `udp` section
//! (syscall-batching speedup, datagrams/sec/core, swarm lookup success
//! and wall latency percentiles). The CI `bench` job uploads the file
//! as a workflow artifact, so every run leaves a data point.
//!
//! `bench_ci --compare old.json new.json` is the trend gate: it fails
//! (exit 1) when a *quality* metric of `new.json` regresses more than 15%
//! against `old.json` (direction-aware; see `dharma_sim::bench_compare`).
//! Wall-clock metrics — events/sec, speedup, RSS, datagrams/sec,
//! wall-latency percentiles — are informational and never gated: they
//! vary across runners. `udp.lookup_success` IS gated: over lossless
//! loopback the swarm must keep finding its records regardless of host
//! speed.
//!
//! The schema is documented in `crates/bench/README.md`; all simulated
//! metrics are seeded (`--seed`, default 42) and deterministic, so gated
//! diffs between two artifacts are real regressions or wins, never noise.

use dharma_kademlia::LatencyConfig;
use dharma_sim::{
    bench_compare, measure_engine_run, run_swarm_threaded, scale_bench, simulate_cache_workload,
    simulate_churn, simulate_freshness, simulate_latency, transport_microbench, CacheSimConfig,
    ChurnConfig, ExpArgs, FreshSimConfig, LatencySimConfig, UdpBenchConfig,
};

/// `--compare old.json new.json`: exit 0 on pass, 1 on regression.
fn run_compare(old_path: &str, new_path: &str) -> ! {
    let old = std::fs::read_to_string(old_path).unwrap_or_else(|e| panic!("read {old_path}: {e}"));
    let new = std::fs::read_to_string(new_path).unwrap_or_else(|e| panic!("read {new_path}: {e}"));
    let failures = bench_compare::compare(&old, &new);
    if failures.is_empty() {
        println!("bench compare: no quality regressions vs {old_path}");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("BENCH REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--compare") {
        match (raw.get(1), raw.get(2)) {
            (Some(old), Some(new)) => run_compare(old, new),
            _ => {
                eprintln!("usage: bench_ci --compare old.json new.json");
                std::process::exit(2);
            }
        }
    }
    let args = match ExpArgs::try_parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: bench_ci [--seed N] [--out DIR] | --compare old.json new.json");
            std::process::exit(2);
        }
    };

    // ----- cache effectiveness (A5 smoke scale) -----------------------
    let cache_base = CacheSimConfig {
        nodes: 32,
        k: 6,
        keys: 16,
        ops: 600,
        zipf_s: 1.2,
        seed: args.seed,
        ..CacheSimConfig::default()
    };
    let cache_off = simulate_cache_workload(&cache_base);
    let cache_on = simulate_cache_workload(&CacheSimConfig {
        cache: Some(CacheSimConfig::ablation_cache()),
        replication: Some(CacheSimConfig::ablation_replication()),
        ..cache_base.clone()
    });
    // How much the busiest node's GET load drops when caching is on.
    let max_load_ratio = if cache_on.max_get_load == 0 {
        0.0
    } else {
        cache_off.max_get_load as f64 / cache_on.max_get_load as f64
    };

    // ----- adaptive maintenance (A7 smoke scale) ----------------------
    let churn = simulate_churn(&ChurnConfig {
        nodes: 24,
        k: 8,
        keys: 12,
        horizon_us: 60_000_000,
        op_interval_us: 500_000,
        mean_session_us: 20_000_000,
        mean_downtime_us: 5_000_000,
        sample_interval_us: 3_000_000,
        repair: Some(ChurnConfig::ablation_adaptive()),
        seed: args.seed,
        ..ChurnConfig::default()
    });

    // ----- cache freshness (A8 smoke scale) ---------------------------
    let fresh_base = FreshSimConfig {
        nodes: 32,
        k: 6,
        keys: 16,
        ops: 600,
        seed: args.seed,
        ..FreshSimConfig::default()
    };
    let fresh_ttl = simulate_freshness(&fresh_base);
    let fresh_gossip = simulate_freshness(&FreshSimConfig {
        freshness: Some(FreshSimConfig::ablation_freshness()),
        ..fresh_base.clone()
    });
    // The push-enabled arm (gossip + warm routing + write-triggered
    // invalidation push) — the A8 arm whose staleness/message budget the
    // trend gate watches.
    let fresh_push = simulate_freshness(&FreshSimConfig {
        freshness: Some({
            let mut f = FreshSimConfig::ablation_freshness_push();
            f.cache_aware_routing = true;
            f
        }),
        ..fresh_base.clone()
    });

    // ----- latency-aware lookups (A9 smoke scale) ---------------------
    let latency_base = LatencySimConfig {
        nodes: 32,
        keys: 16,
        warmup_ops: 240,
        ops: 400,
        seed: args.seed,
        ..LatencySimConfig::default()
    };
    let lat_blind = simulate_latency(&latency_base);
    let lat_full = simulate_latency(&LatencySimConfig {
        latency: Some(LatencyConfig::default()),
        ..latency_base.clone()
    });

    // ----- engine throughput (serial vs sharded, bench scale) ---------
    // Event counts are deterministic per discipline; events/sec, speedup
    // and RSS are wall-clock measurements — informational in the artifact
    // and explicitly exempt from the `--compare` gate.
    let mut engine_cfg = scale_bench(args.seed);
    engine_cfg.shards = 1;
    let engine_serial = measure_engine_run(&engine_cfg);
    engine_cfg.shards = 4;
    let engine_sharded = measure_engine_run(&engine_cfg);
    let speedup = engine_sharded.events_per_sec / engine_serial.events_per_sec.max(1e-9);

    // ----- real-socket transport (bench_udp smoke scale) ---------------
    // The swarm runs its participants on threads here — bench_ci has no
    // child-process re-exec hook, and CI wants one process to watch. The
    // multi-process variant is exercised by the dedicated bench-udp job.
    let udp_micro = transport_microbench(20_000).expect("udp microbench");
    let udp_swarm = run_swarm_threaded(&UdpBenchConfig::smoke(args.seed)).expect("udp swarm");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"dharma-bench-ci/5\",\n",
            "  \"seed\": {seed},\n",
            "  \"cache\": {{\n",
            "    \"hit_ratio\": {hit:.6},\n",
            "    \"max_load_ratio\": {mlr:.4},\n",
            "    \"messages_per_get\": {mpg:.4}\n",
            "  }},\n",
            "  \"maintenance\": {{\n",
            "    \"lookup_success\": {ok:.6},\n",
            "    \"lost_records\": {lost},\n",
            "    \"maint_msgs_per_get\": {maint:.4}\n",
            "  }},\n",
            "  \"freshness\": {{\n",
            "    \"ttl_only_hit_ratio\": {fth:.6},\n",
            "    \"gossip_hit_ratio\": {fgh:.6},\n",
            "    \"ttl_only_p99_staleness_us\": {ftp},\n",
            "    \"gossip_p99_staleness_us\": {fgp},\n",
            "    \"ttl_only_hops_per_get\": {fthop:.4},\n",
            "    \"gossip_hops_per_get\": {fghop:.4},\n",
            "    \"push_hit_ratio\": {fph:.6},\n",
            "    \"push_p99_staleness_us\": {fpp},\n",
            "    \"push_msgs_per_get\": {fpm:.4}\n",
            "  }},\n",
            "  \"latency\": {{\n",
            "    \"baseline_p50_us\": {lbp50},\n",
            "    \"baseline_p95_us\": {lbp95},\n",
            "    \"baseline_messages_per_get\": {lbmpg:.4},\n",
            "    \"aware_p50_us\": {lap50},\n",
            "    \"aware_p95_us\": {lap95},\n",
            "    \"aware_messages_per_get\": {lampg:.4},\n",
            "    \"aware_lookup_success\": {lasucc:.6}\n",
            "  }},\n",
            "  \"engine\": {{\n",
            "    \"serial_events\": {sev},\n",
            "    \"sharded_events\": {shev},\n",
            "    \"serial_events_per_sec\": {seps:.1},\n",
            "    \"sharded_events_per_sec\": {sheps:.1},\n",
            "    \"speedup\": {spd:.2},\n",
            "    \"peak_rss_bytes\": {rss}\n",
            "  }},\n",
            "  \"udp\": {{\n",
            "    \"dgrams_per_sec_core\": {udps:.1},\n",
            "    \"batching_speedup\": {ubsp:.3},\n",
            "    \"syscall_cost_ns\": {usys:.1},\n",
            "    \"lookup_success\": {usucc:.6},\n",
            "    \"swarm_nodes\": {unodes},\n",
            "    \"p50_wall_us\": {up50:.1},\n",
            "    \"p99_wall_us\": {up99:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        seed = args.seed,
        hit = cache_on.hit_ratio,
        mlr = max_load_ratio,
        mpg = cache_on.messages_per_get,
        ok = churn.lookup_success,
        lost = churn.lost_records,
        maint = churn.maint_msgs_per_get,
        fth = fresh_ttl.hit_ratio,
        fgh = fresh_gossip.hit_ratio,
        ftp = fresh_ttl.p99_staleness_us,
        fgp = fresh_gossip.p99_staleness_us,
        fthop = fresh_ttl.mean_hops_per_get,
        fghop = fresh_gossip.mean_hops_per_get,
        fph = fresh_push.hit_ratio,
        fpp = fresh_push.p99_staleness_us,
        fpm = fresh_push.messages_per_get,
        lbp50 = lat_blind.p50_us,
        lbp95 = lat_blind.p95_us,
        lbmpg = lat_blind.messages_per_get,
        lap50 = lat_full.p50_us,
        lap95 = lat_full.p95_us,
        lampg = lat_full.messages_per_get,
        lasucc = lat_full.success_ratio,
        sev = engine_serial.events,
        shev = engine_sharded.events,
        seps = engine_serial.events_per_sec,
        sheps = engine_sharded.events_per_sec,
        spd = speedup,
        rss = engine_sharded.peak_rss_bytes,
        udps = udp_micro.batched_dgrams_per_sec,
        ubsp = udp_micro.speedup,
        usys = udp_micro.syscall_cost_ns,
        usucc = udp_swarm.lookup_success,
        unodes = udp_swarm.nodes,
        up50 = udp_swarm.p50_wall_us,
        up99 = udp_swarm.p99_wall_us,
    );

    std::fs::create_dir_all(&args.out).expect("output dir");
    let path = std::path::Path::new(&args.out).join("BENCH_ci.json");
    std::fs::write(&path, &json).expect("write BENCH_ci.json");
    print!("{json}");
    println!("wrote {}", path.display());
}
