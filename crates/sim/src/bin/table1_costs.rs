//! **E1 — Table I**: distributed tagging primitive costs, in overlay
//! lookups, measured on a live simulated overlay.
//!
//! Builds a Kademlia network, drives a `DharmaClient` through Insert / Tag /
//! Search-step primitives, and checks the observed lookup counts against the
//! paper's formulas: `2 + 2m`, `4 + |Tags(r)|` (naive), `4 + k`
//! (approximated), and `2`.

use dharma_core::{ApproxPolicy, DharmaClient, DharmaConfig};
use dharma_likir::CertificationAuthority;
use dharma_sim::output::{f2, TextTable};
use dharma_sim::overlay::{build_overlay, OverlayConfig};
use dharma_sim::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    let mut net = build_overlay(&OverlayConfig {
        nodes: 64,
        seed: args.seed,
        ..OverlayConfig::default()
    });
    let ca = CertificationAuthority::new(b"dharma-table1");
    let identity = ca.register("experimenter", 0);

    let mut table = TextTable::new([
        "Primitive",
        "params",
        "formula",
        "observed lookups",
        "mean messages",
    ]);

    // ---- Insert(r, t1..m): 2 + 2m ------------------------------------
    let mut client = DharmaClient::new(
        1,
        identity.clone(),
        DharmaConfig::builder()
            .policy(ApproxPolicy::EXACT)
            .seed(args.seed)
            .build()
            .expect("table1 exact client config is in range"),
    );
    for m in [1usize, 2, 5, 10, 25] {
        let tags: Vec<String> = (0..m).map(|i| format!("ins-m{m}-t{i}")).collect();
        let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
        let cost = client
            .insert_resource(&mut net, &format!("ins-res-{m}"), "uri://x", &tag_refs)
            .expect("insert");
        table.row([
            "Insert (r, t1..m)".to_string(),
            format!("m={m}"),
            format!("2+2m = {}", 2 + 2 * m),
            cost.lookups.to_string(),
            f2(cost.messages as f64),
        ]);
    }

    // ---- Tag(r, t) naive: 4 + |Tags(r)| -------------------------------
    for degree in [3usize, 8, 20] {
        let tags: Vec<String> = (0..degree).map(|i| format!("deg{degree}-t{i}")).collect();
        let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
        let rname = format!("naive-res-{degree}");
        client
            .insert_resource(&mut net, &rname, "uri://x", &tag_refs)
            .expect("insert");
        let receipt = client.tag(&mut net, &rname, "fresh-tag").expect("tag");
        assert_eq!(receipt.neighborhood, degree);
        table.row([
            "Tag (r,t) naive".to_string(),
            format!("|Tags(r)|={degree}"),
            format!("4+|Tags(r)| = {}", 4 + degree),
            receipt.cost.lookups.to_string(),
            f2(receipt.cost.messages as f64),
        ]);
    }

    // ---- Tag(r, t) approximated: 4 + k --------------------------------
    for k in [1usize, 5, 10] {
        let mut approx_client = DharmaClient::new(
            2,
            identity.clone(),
            DharmaConfig::builder()
                .policy(ApproxPolicy::paper(k))
                .seed(args.seed ^ k as u64)
                .build()
                .expect("table1 approx client config is in range"),
        );
        let degree = 20usize;
        let tags: Vec<String> = (0..degree).map(|i| format!("apx{k}-t{i}")).collect();
        let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
        let rname = format!("approx-res-{k}");
        approx_client
            .insert_resource(&mut net, &rname, "uri://x", &tag_refs)
            .expect("insert");
        let receipt = approx_client
            .tag(&mut net, &rname, "fresh-tag")
            .expect("tag");
        table.row([
            "Tag (r,t) approx".to_string(),
            format!("k={k}, |Tags(r)|={degree}"),
            format!("4+k = {}", 4 + k),
            receipt.cost.lookups.to_string(),
            f2(receipt.cost.messages as f64),
        ]);
    }

    // ---- Search step: 2 -----------------------------------------------
    let mut total_lookups = 0u32;
    let mut total_msgs = 0u64;
    let steps = 10;
    for i in 0..steps {
        let (_, _, cost) = client
            .search_step(&mut net, &format!("deg8-t{}", i % 8))
            .expect("search step");
        total_lookups += cost.lookups;
        total_msgs += cost.messages;
    }
    table.row([
        "Search step".to_string(),
        format!("{steps} steps"),
        "2".to_string(),
        f2(f64::from(total_lookups) / steps as f64),
        f2(total_msgs as f64 / steps as f64),
    ]);

    table.print("Table I — distributed tagging system primitives cost (#overlay lookups)");
    println!("\npaper:  Insert 2+2m | Tag naive 4+|Tags(r)| | Tag approx 4+k | Search step 2");
    println!(
        "(messages column: transport datagrams per primitive — each lookup is O(log n) messages)"
    );
}
