//! **A2 — ablation**: the connection parameter k, swept well beyond the
//! paper's sampled values. Table III samples k ∈ {1, 5, 10}; Figures 6/8
//! sample {1, 25, 100, 500}. The sweep shows the full recall/τ/θ curves and
//! where they saturate — the cost/quality trade the paper's conclusion
//! ("even k = 1 suffices") rests on.

use dharma_folksonomy::compare::compare_graphs;
use dharma_sim::output::{f4, CsvSink, TextTable};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let ks = [1usize, 2, 3, 5, 10, 25, 50, 100, 250, 500];

    let mut table = TextTable::new([
        "k",
        "arcs kept",
        "Recall mu",
        "Ktau mu",
        "theta mu",
        "sim1% mu",
    ]);
    let mut rows = Vec::new();
    let exact_arcs = ctx.exact_fg.num_arcs();
    for k in ks {
        let model = ctx.replay_paper(k);
        let cmp = compare_graphs(&ctx.pool, &ctx.exact_fg, model.fg(), 2);
        let kept = model.fg().num_arcs() as f64 / exact_arcs as f64;
        table.row([
            k.to_string(),
            format!("{:.1}%", kept * 100.0),
            f4(cmp.recall.mean()),
            f4(cmp.tau.mean()),
            f4(cmp.theta.mean()),
            f4(cmp.sim1.mean()),
        ]);
        rows.push(vec![
            k.to_string(),
            f4(kept),
            f4(cmp.recall.mean()),
            f4(cmp.recall.std()),
            f4(cmp.tau.mean()),
            f4(cmp.theta.mean()),
            f4(cmp.sim1.mean()),
        ]);
    }
    table.print("Ablation A2 — connection parameter sweep");
    println!("(paper: recall grows sub-linearly with k; rank metrics are high already at k = 1)");

    let sink = CsvSink::new(&ctx.args.out, "ablation_k_sweep").expect("output dir");
    let path = sink
        .write(
            "k_sweep.csv",
            &[
                "k",
                "arcs_kept",
                "recall_mu",
                "recall_sigma",
                "ktau_mu",
                "theta_mu",
                "sim1_mu",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
