//! **A7 — ablation**: fixed vs churn-adaptive maintenance cadence, and
//! crash-style vs graceful departures (`dharma-adapt`).
//!
//! PR 3's maintenance loop runs on fixed knobs, so a quiet overlay pays the
//! same probe/repair traffic as a churning one. This ablation sweeps the
//! cadence policy (fixed [`ChurnConfig::ablation_repair`] vs adaptive
//! [`ChurnConfig::ablation_adaptive`]) across churn levels, plus an
//! all-graceful-departure run against the crash-only baseline.
//!
//! Acceptance bar (checked and enforced here, so CI fails fast on an
//! adaptive-path regression):
//!
//! * **near-zero churn** — adaptive cadence cuts maintenance msgs/GET at
//!   least 2× vs the fixed knobs while lookup success stays ≥ 99%;
//! * **moderate churn** (PR 3's scenario) — adaptive cadence keeps lookup
//!   success ≥ 99% and loses 0 records (tightening to the min bounds must
//!   preserve the repair guarantee);
//! * **all-graceful departures** — 0 records lost, with repair
//!   re-replication traffic well below the crash-only run (the parting
//!   handoff pre-heals the replica set, and low-weighted `Leave` notices
//!   keep the estimated churn — and with it the repair cadence — down).
//!
//! `--smoke` shrinks everything to a small overlay and short horizon (the
//! CI job), with a correspondingly relaxed success bar.

use dharma_kademlia::{AdaptConfig, MaintConfig};
use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_churn, ChurnConfig, ChurnReport, ExpArgs};

/// Console row (human-formatted percentages).
fn table_row(churn: &str, mode: &str, rep: &ChurnReport) -> Vec<String> {
    vec![
        churn.to_string(),
        mode.to_string(),
        format!("{:.1}%", rep.lookup_success * 100.0),
        rep.lost_records.to_string(),
        rep.departures.to_string(),
        rep.graceful_departures.to_string(),
        f2(rep.maint_msgs_per_get),
        rep.rereplications.to_string(),
        rep.messages_total.to_string(),
    ]
}

/// CSV row (raw numerics only).
fn csv_row(churn: &str, mode: &str, rep: &ChurnReport) -> Vec<String> {
    vec![
        churn.to_string(),
        mode.to_string(),
        format!("{:.6}", rep.lookup_success),
        rep.lost_records.to_string(),
        rep.departures.to_string(),
        rep.graceful_departures.to_string(),
        format!("{:.4}", rep.maint_msgs_per_get),
        rep.probes.to_string(),
        rep.rereplications.to_string(),
        rep.leave_notices.to_string(),
        rep.leave_handoffs.to_string(),
        rep.messages_total.to_string(),
    ]
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ablation_adaptive [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };

    let base = if smoke {
        ChurnConfig {
            nodes: 24,
            k: 8,
            keys: 12,
            horizon_us: 60_000_000,
            op_interval_us: 500_000,
            mean_downtime_us: 5_000_000,
            sample_interval_us: 3_000_000,
            seed: args.seed,
            ..ChurnConfig::default()
        }
    } else {
        ChurnConfig {
            seed: args.seed,
            ..ChurnConfig::default()
        }
    };
    // Churn rows: mean session lengths. "near-zero" makes expected
    // departures over the horizon ≈ 0–2, the regime where fixed knobs pay
    // pure overhead; "moderate" is PR 3's repair-guarantee scenario.
    let (near_zero_session, moderate_session) = if smoke {
        (2_000_000_000, 20_000_000)
    } else {
        (6_000_000_000, 60_000_000)
    };
    let fixed_cfg = if smoke {
        MaintConfig::builder()
            .probe_interval_us(1_000_000)
            .repair_interval_us(6_000_000)
            .join_handoff(true)
            .demote_interval_us(None)
            .build()
            .expect("smoke repair config is in range")
    } else {
        ChurnConfig::ablation_repair()
    };
    let adaptive_cfg = if smoke {
        let mut cfg = fixed_cfg.clone();
        cfg.adaptive = Some(AdaptConfig {
            probe_min_us: 1_000_000,
            probe_max_us: 5_000_000,
            repair_min_us: 6_000_000,
            repair_max_us: 30_000_000,
            half_life_us: 15_000_000,
            hot_weight: 8.0,
            leave_weight: 0.1,
            repair_budget: 16,
        });
        cfg
    } else {
        ChurnConfig::ablation_adaptive()
    };
    let success_bar = if smoke { 0.95 } else { 0.99 };

    let run = |session: u64, maint: &MaintConfig, graceful: f64| -> ChurnReport {
        let mut cfg = base.clone();
        cfg.mean_session_us = session;
        cfg.repair = Some(maint.clone());
        cfg.graceful_fraction = graceful;
        simulate_churn(&cfg)
    };

    let mut table = TextTable::new([
        "churn",
        "cadence",
        "lookup ok",
        "lost",
        "departs",
        "graceful",
        "maint/GET",
        "repushes",
        "msgs",
    ]);
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let record = |table: &mut TextTable,
                  rows: &mut Vec<Vec<String>>,
                  churn: &str,
                  mode: &str,
                  rep: &ChurnReport| {
        table.row(table_row(churn, mode, rep));
        rows.push(csv_row(churn, mode, rep));
    };

    // ----- fixed vs adaptive across churn levels ----------------------
    let quiet_fixed = run(near_zero_session, &fixed_cfg, 0.0);
    let quiet_adaptive = run(near_zero_session, &adaptive_cfg, 0.0);
    record(&mut table, &mut rows, "near-zero", "fixed", &quiet_fixed);
    record(
        &mut table,
        &mut rows,
        "near-zero",
        "adaptive",
        &quiet_adaptive,
    );

    let moderate_fixed = run(moderate_session, &fixed_cfg, 0.0);
    let moderate_adaptive = run(moderate_session, &adaptive_cfg, 0.0);
    record(&mut table, &mut rows, "moderate", "fixed", &moderate_fixed);
    record(
        &mut table,
        &mut rows,
        "moderate",
        "adaptive",
        &moderate_adaptive,
    );

    // ----- crash-only vs all-graceful departures (adaptive cadence) ---
    let crash_only = &moderate_adaptive;
    let all_graceful = run(moderate_session, &adaptive_cfg, 1.0);
    record(&mut table, &mut rows, "moderate", "graceful", &all_graceful);

    // ----- the dharma-adapt acceptance bar ----------------------------
    if quiet_adaptive.maint_msgs_per_get * 2.0 > quiet_fixed.maint_msgs_per_get {
        failures.push(format!(
            "near-zero churn: adaptive cadence saves only {:.2} -> {:.2} maint msgs/GET (need ≥ 2x)",
            quiet_fixed.maint_msgs_per_get, quiet_adaptive.maint_msgs_per_get
        ));
    }
    if quiet_adaptive.lookup_success < success_bar {
        failures.push(format!(
            "near-zero churn: adaptive lookup success {:.3} below the {success_bar} bar",
            quiet_adaptive.lookup_success
        ));
    }
    if moderate_adaptive.lookup_success < success_bar {
        failures.push(format!(
            "moderate churn: adaptive lookup success {:.3} below the {success_bar} bar",
            moderate_adaptive.lookup_success
        ));
    }
    if moderate_adaptive.lost_records != 0 {
        failures.push(format!(
            "moderate churn: adaptive cadence lost {} records (must be 0)",
            moderate_adaptive.lost_records
        ));
    }
    if all_graceful.lost_records != 0 {
        failures.push(format!(
            "all-graceful run lost {} records (must be 0)",
            all_graceful.lost_records
        ));
    }
    if all_graceful.graceful_departures != all_graceful.departures {
        failures.push("all-graceful run had crash-style departures".to_string());
    }
    if (all_graceful.rereplications as f64) > 0.7 * crash_only.rereplications as f64 {
        failures.push(format!(
            "graceful departures should need well below the crash-only run's repair \
             traffic: {} repushes vs {}",
            all_graceful.rereplications, crash_only.rereplications
        ));
    }

    table.print("Ablation A7 — maintenance cadence policy × churn (dharma-adapt)");
    println!(
        "(maint/GET is probes+handoffs+repushes+leave traffic per GET; repushes \
         is repair re-replication pushes alone; the graceful row drains every \
         departing node through the leave protocol)"
    );

    let sink = CsvSink::new(&args.out, "ablation_adaptive").expect("output dir");
    let path = sink
        .write(
            "adaptive.csv",
            &[
                "churn",
                "cadence",
                "lookup_success",
                "lost_records",
                "departures",
                "graceful_departures",
                "maint_msgs_per_get",
                "probes",
                "rereplications",
                "leave_notices",
                "leave_handoffs",
                "messages_total",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
