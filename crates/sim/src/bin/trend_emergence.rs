//! **E7 (extension — the paper's §VI future work)**: does the approximated
//! model hamper the emergence of new tagging trends?
//!
//! A brand-new tag is injected mid-replay onto popular resources; we track
//! how many trend annotations it takes until the tag becomes *visible* —
//! enters the top-100 display of the hub tag it co-occurs with — under the
//! exact model and under Approximations A+B for several k.

use dharma_folksonomy::ApproxPolicy;
use dharma_sim::output::{CsvSink, TextTable};
use dharma_sim::trend::{run_trend, TrendConfig};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let sink = CsvSink::new(&ctx.args.out, "trend_emergence").expect("output dir");

    let policies: Vec<(String, ApproxPolicy)> = vec![
        ("exact".into(), ApproxPolicy::EXACT),
        ("k=1".into(), ApproxPolicy::paper(1)),
        ("k=5".into(), ApproxPolicy::paper(5)),
        ("k=25".into(), ApproxPolicy::paper(25)),
    ];

    let mut table = TextTable::new([
        "policy",
        "events to visibility",
        "final hub rank",
        "final arc weight",
        "final out-degree",
    ]);
    for (name, policy) in policies {
        let cfg = TrendConfig {
            policy,
            trend_events: 4_000,
            seed: ctx.args.seed,
            ..TrendConfig::default()
        };
        let report = run_trend(&ctx.dataset.trg, &cfg);
        let last = report.samples.last().expect("samples");
        let visibility = report
            .events_to_visibility
            .map_or("never".to_string(), |e| e.to_string());
        table.row([
            name.clone(),
            visibility.clone(),
            last.hub_rank.map_or("-".into(), |r| r.to_string()),
            last.hub_arc_weight.to_string(),
            last.out_degree.to_string(),
        ]);

        let csv = report
            .samples
            .iter()
            .map(|s| {
                vec![
                    s.trend_events.to_string(),
                    s.hub_arc_weight.to_string(),
                    s.hub_rank.map_or(String::new(), |r| r.to_string()),
                    s.out_degree.to_string(),
                    u8::from(s.visible).to_string(),
                ]
            })
            .collect::<Vec<_>>();
        let path = sink
            .write(
                &format!("trajectory_{}.csv", name.replace('=', "")),
                &[
                    "trend_events",
                    "hub_arc_weight",
                    "hub_rank",
                    "out_degree",
                    "visible",
                ],
                csv,
            )
            .expect("write csv");
        println!("wrote {}", path.display());
    }

    table.print("E7 — trend emergence under approximation (paper §VI future work)");
    println!("\nreading: the asymmetry of the approximation shows up cleanly —");
    println!(" * the trend's OWN neighborhood (out-degree) forms almost fully under every k:");
    println!("   forward arcs ride the single t̂ block update, which A never subsets;");
    println!(" * its INBOUND visibility (rank inside the hub's top-100 display) is starved by");
    println!("   ~k/|Tags(r)| per event, so low k defers discovery through popular tags' lists.");
    println!(" Navigating FROM a trend works immediately; being FOUND through hubs is delayed —");
    println!(" the paper's open question (§VI) answered: approximation defers trend discovery");
    println!(" roughly linearly in 1/k, without censoring the trend's own structure.");
}
