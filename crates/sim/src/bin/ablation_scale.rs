//! **A-scale — engine throughput**: serial vs sharded event engine on the
//! churn+cache workload ([`dharma_sim::scale`]).
//!
//! The full run (no flags) is the ROADMAP-item-1 measurement: a 10k-node
//! overlay under churn with caching, ≥ 1M Zipf GETs, executed on the
//! serial engine (`shards = 1`) and on the sharded engine, reporting
//! events/sec, wall time and peak RSS for each. On hosts with ≥ 4 cores
//! the sharded engine must clear 4× the serial events/sec; on smaller
//! hosts the speedup is reported but not enforced (a 1-core box cannot
//! measure parallelism).
//!
//! `--smoke` is the CI job: 1k nodes / 30k GETs on ≥ 4 shards, plus a
//! 2-vs-4-shard invariance check on a reduced scenario — the parallel
//! path exercised end-to-end on every PR within a small wall budget.
//!
//! Determinism contract (also in `crates/bench/README.md`): results are
//! bit-deterministic per seed *per engine discipline* — `shards = 1` is
//! the legacy serial sequence, `shards ≥ 2` is one sequence invariant in
//! the shard count and in serial-vs-parallel execution. Wall-clock and
//! RSS are measurements, never compared for equality or gated in CI.

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{measure_engine_run, scale_full, scale_smoke, EngineRun, ExpArgs};

fn row(run: &EngineRun) -> Vec<String> {
    vec![
        if run.shards == 1 {
            "serial".into()
        } else {
            format!("sharded×{}", run.shards)
        },
        run.events.to_string(),
        format!("{:.1}", run.wall_us as f64 / 1e6),
        format!("{:.0}", run.events_per_sec),
        format!("{:.0}", run.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.1}%", run.report.lookup_success * 100.0),
        run.report.lost_records.to_string(),
        run.report.gets.to_string(),
    ]
}

fn csv_row(run: &EngineRun) -> Vec<String> {
    vec![
        run.shards.to_string(),
        run.events.to_string(),
        run.wall_us.to_string(),
        format!("{:.1}", run.events_per_sec),
        run.peak_rss_bytes.to_string(),
        format!("{:.6}", run.report.lookup_success),
        run.report.lost_records.to_string(),
        run.report.gets.to_string(),
        run.report.departures.to_string(),
        run.report.joins.to_string(),
    ]
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ablation_scale [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let shards = cores.clamp(4, 16);
    let mut failures: Vec<String> = Vec::new();

    // ----- shard-count invariance on a reduced scenario ----------------
    // Cheap enough for both modes: the sharded discipline must not depend
    // on how many shards carve the node set (the net- and sim-level test
    // suites pin this too; here it guards the actual binary path).
    {
        let mut small = scale_smoke(args.seed);
        small.nodes = 100;
        small.keys = 32;
        small.horizon_us = 10_000_000;
        small.op_interval_us = 10_000;
        small.shards = 2;
        let two = measure_engine_run(&small);
        small.shards = 4;
        let four = measure_engine_run(&small);
        if two.report != four.report {
            failures.push("2-shard and 4-shard runs diverged on the reduced scenario".into());
        }
    }

    // ----- the headline comparison -------------------------------------
    let base = if smoke {
        scale_smoke(args.seed)
    } else {
        scale_full(args.seed)
    };
    let mut serial_cfg = base.clone();
    serial_cfg.shards = 1;
    let serial = measure_engine_run(&serial_cfg);
    let mut sharded_cfg = base.clone();
    sharded_cfg.shards = shards;
    let sharded = measure_engine_run(&sharded_cfg);

    let speedup = sharded.events_per_sec / serial.events_per_sec.max(1e-9);

    let mut table = TextTable::new([
        "engine",
        "events",
        "wall s",
        "events/s",
        "RSS MiB",
        "lookup ok",
        "lost",
        "GETs",
    ]);
    table.row(row(&serial));
    table.row(row(&sharded));
    table.print(&format!(
        "Ablation A-scale — engine throughput, {} nodes / {} GETs ({} cores)",
        base.nodes, serial.report.gets, cores
    ));
    println!(
        "sharded×{shards} vs serial: {} speedup (events/sec; \
         wall-clock measurement, not a determinism check)",
        f2(speedup)
    );

    // ----- acceptance ---------------------------------------------------
    if serial.report.gets == 0 || serial.report.lookup_success < 0.90 {
        failures.push(format!(
            "serial run unhealthy: {} GETs, success {:.3}",
            serial.report.gets, serial.report.lookup_success
        ));
    }
    if sharded.report.gets == 0 || sharded.report.lookup_success < 0.90 {
        failures.push(format!(
            "sharded run unhealthy: {} GETs, success {:.3}",
            sharded.report.gets, sharded.report.lookup_success
        ));
    }
    if !smoke && serial.report.gets < 1_000_000 {
        failures.push(format!(
            "full run must issue >= 1M GETs, issued {}",
            serial.report.gets
        ));
    }
    // The >=4x bar needs >=4 cores to be measurable at all; report-only
    // otherwise (the CI scale job runs on multi-core runners).
    if !smoke && cores >= 4 && speedup < 4.0 {
        failures.push(format!(
            "sharded engine reached only {speedup:.2}x serial events/sec on {cores} cores (need >= 4x)"
        ));
    }

    let sink = CsvSink::new(&args.out, "ablation_scale").expect("output dir");
    let path = sink
        .write(
            "scale.csv",
            &[
                "shards",
                "events",
                "wall_us",
                "events_per_sec",
                "peak_rss_bytes",
                "lookup_success",
                "lost_records",
                "gets",
                "departures",
                "joins",
            ],
            vec![csv_row(&serial), csv_row(&sharded)],
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
