//! **bench_udp — real-socket transport benchmark**
//! ([`dharma_sim::udp_bench`]).
//!
//! Two phases, both on loopback:
//!
//! 1. **Syscall-batching microbench** — datagrams/sec/core through a
//!    socket pair with `sendmmsg`/`recvmmsg` batching vs the legacy
//!    one-syscall-per-packet discipline, plus an `SO_REUSEPORT` arm
//!    (several sockets sharing one port). Acceptance: batched ≥ 2× the
//!    per-packet rate (≥ 1.5× under `--smoke`, where short pumps are
//!    noisier).
//!
//! 2. **Multi-process overlay swarm** — M child processes × K Kademlia
//!    nodes, each node on its own UDP socket inside a shared-nothing
//!    [`UdpWorker`](dharma_net::udp::UdpWorker), joined through a TCP
//!    rendezvous, running the Zipf GET workload. Reports wall-clock
//!    lookup latency percentiles and lookup success. Acceptance: ≥ 99 %
//!    of GETs return a value.
//!
//! Wall-clock figures are host-dependent measurements: seeds pin the
//! workload, not the nanoseconds. Only ratios and the success floor are
//! enforced.

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{
    maybe_run_swarm_child, run_swarm_multiprocess, transport_microbench, ExpArgs, UdpBenchConfig,
};

fn main() {
    // If the parent re-invoked us as a swarm participant, this runs the
    // child and exits; the normal bench path continues below.
    maybe_run_swarm_child();

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: bench_udp [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };
    let cfg = if smoke {
        UdpBenchConfig::smoke(args.seed)
    } else {
        UdpBenchConfig::full(args.seed)
    };
    let mut failures: Vec<String> = Vec::new();

    // ----- phase 1: syscall-batching microbench -------------------------
    // Short loopback pumps are noisy (scheduler, softirq placement), so
    // the recorded figure is the best of three attempts — regressions in
    // the batching path lose all three, noise doesn't.
    let micro = {
        let mut best: Option<dharma_sim::MicrobenchReport> = None;
        for _ in 0..3 {
            match transport_microbench(cfg.micro_datagrams) {
                Ok(m) => {
                    if best.as_ref().is_none_or(|b| m.speedup > b.speedup) {
                        best = Some(m);
                    }
                }
                Err(e) => {
                    eprintln!("microbench failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        best.expect("three attempts ran")
    };
    let mut table = TextTable::new(["arm", "sockets", "datagrams", "dgrams/s/core"]);
    table.row(vec![
        "per-packet".into(),
        "1".into(),
        micro.datagrams.to_string(),
        format!("{:.0}", micro.per_packet_dgrams_per_sec),
    ]);
    table.row(vec![
        "batched".into(),
        "1".into(),
        micro.datagrams.to_string(),
        format!("{:.0}", micro.batched_dgrams_per_sec),
    ]);
    if micro.reuseport_sockets > 0 {
        table.row(vec![
            "batched+reuseport".into(),
            micro.reuseport_sockets.to_string(),
            micro.datagrams.to_string(),
            format!("{:.0}", micro.reuseport_dgrams_per_sec),
        ]);
    }
    table.print(&format!(
        "bench_udp — transport microbench, {}-byte payloads on loopback",
        micro.payload
    ));
    println!(
        "batched vs per-packet: {}x datagrams/sec/core (host syscall cost {:.0} ns)",
        f2(micro.speedup),
        micro.syscall_cost_ns
    );

    // Batching converts N syscall entries into one, so its ceiling is the
    // syscall share of per-packet cost. The 2x bar is enforced where that
    // share can carry it (mitigated kernels, ~600+ ns entries); on
    // stripped VMs with ~100 ns entries the loopback stack dominates and
    // the ratio is report-only — same policy as ablation_scale's
    // multi-core bar. Batching must never *lose* to per-packet, anywhere.
    let speedup_bar = if smoke { 1.5 } else { 2.0 };
    let gate_on = micro.syscall_cost_ns >= dharma_sim::udp_bench::SYSCALL_COST_GATE_NS;
    if cfg!(target_os = "linux") && gate_on && micro.speedup < speedup_bar {
        failures.push(format!(
            "syscall batching reached only {:.2}x per-packet throughput (need >= {speedup_bar}x)",
            micro.speedup
        ));
    }
    if cfg!(target_os = "linux") && !gate_on {
        println!(
            "note: syscall cost {:.0} ns < {:.0} ns gate — the {speedup_bar}x bar is \
             report-only on this host (syscalls too cheap to dominate loopback cost)",
            micro.syscall_cost_ns,
            dharma_sim::udp_bench::SYSCALL_COST_GATE_NS
        );
        if micro.speedup < 0.9 {
            failures.push(format!(
                "syscall batching must not lose to per-packet: {:.2}x",
                micro.speedup
            ));
        }
    }

    // ----- phase 2: multi-process overlay swarm -------------------------
    let swarm = match run_swarm_multiprocess(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swarm run failed: {e}");
            std::process::exit(1);
        }
    };
    let mut stable = TextTable::new([
        "procs", "nodes", "lookups", "success", "p50 ms", "p99 ms", "acks",
    ]);
    stable.row(vec![
        swarm.procs.to_string(),
        swarm.nodes.to_string(),
        swarm.lookups.to_string(),
        format!("{:.1}%", swarm.lookup_success * 100.0),
        format!("{:.2}", swarm.p50_wall_us / 1000.0),
        format!("{:.2}", swarm.p99_wall_us / 1000.0),
        swarm.write_acks.to_string(),
    ]);
    stable.print(&format!(
        "bench_udp — {} processes x {} nodes, Zipf(s={}) GETs over real loopback UDP",
        cfg.procs, cfg.nodes_per_proc, cfg.zipf_s
    ));

    let expected_lookups = (cfg.procs * cfg.gets_per_proc) as u64;
    if swarm.lookups < expected_lookups {
        failures.push(format!(
            "swarm completed only {}/{} GETs before the phase deadline",
            swarm.lookups, expected_lookups
        ));
    }
    if swarm.lookup_success < 0.99 {
        failures.push(format!(
            "swarm lookup success {:.4} below the 0.99 floor",
            swarm.lookup_success
        ));
    }

    // ----- CSV ----------------------------------------------------------
    let sink = CsvSink::new(&args.out, "bench_udp").expect("output dir");
    let path = sink
        .write(
            "udp.csv",
            &[
                "mode",
                "micro_datagrams",
                "per_packet_dps",
                "batched_dps",
                "speedup",
                "syscall_cost_ns",
                "reuseport_sockets",
                "reuseport_dps",
                "procs",
                "nodes",
                "lookups",
                "successes",
                "lookup_success",
                "p50_wall_us",
                "p99_wall_us",
            ],
            vec![vec![
                if smoke { "smoke" } else { "full" }.to_string(),
                micro.datagrams.to_string(),
                format!("{:.1}", micro.per_packet_dgrams_per_sec),
                format!("{:.1}", micro.batched_dgrams_per_sec),
                format!("{:.3}", micro.speedup),
                format!("{:.1}", micro.syscall_cost_ns),
                micro.reuseport_sockets.to_string(),
                format!("{:.1}", micro.reuseport_dgrams_per_sec),
                swarm.procs.to_string(),
                swarm.nodes.to_string(),
                swarm.lookups.to_string(),
                swarm.successes.to_string(),
                format!("{:.6}", swarm.lookup_success),
                format!("{:.1}", swarm.p50_wall_us),
                format!("{:.1}", swarm.p99_wall_us),
            ]],
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
