//! **E6 — Table IV**: faceted-search path-length statistics.
//!
//! From the 100 most popular tags: one *first*, one *last* and 100 *random*
//! searches each, on the original FG and on the k = 1 approximated FG
//! (stop thresholds `|T| ≤ 1`, `|R| ≤ 10`, display cap 100).

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_searches, ExpArgs, ExpContext, SearchSimConfig};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let cfg = SearchSimConfig {
        seed: ctx.args.seed,
        ..SearchSimConfig::default()
    };

    let original = simulate_searches(&ctx.pool, &ctx.dataset, &ctx.exact_fg, &cfg);
    let model = ctx.replay_paper(1);
    let simulated = simulate_searches(&ctx.pool, &ctx.dataset, model.fg(), &cfg);

    let mut table = TextTable::new(["Steps", "", "Last", "Rand", "First"]);
    for (name, rep) in [("Original", &original), ("Simulated (k=1)", &simulated)] {
        table.row([
            name.to_string(),
            "mu".into(),
            f2(rep.last.mean),
            f2(rep.random.mean),
            f2(rep.first.mean),
        ]);
        table.row([
            String::new(),
            "sigma".into(),
            f2(rep.last.std),
            f2(rep.random.std),
            f2(rep.first.std),
        ]);
        table.row([
            String::new(),
            "median".into(),
            f2(rep.last.median),
            f2(rep.random.median),
            f2(rep.first.median),
        ]);
    }
    table.print("Table IV — search simulation statistics");
    println!("\npaper Original:        mu 3.47 / 6.41 / 33.94   median 3 / 5 / 33");
    println!("paper Simulated (k=1): mu 3.38 / 5.21 / 19.17   median 3 / 5 / 16");
    println!("(shape to check: last < random < first, and k=1 shortens 'first' substantially)");

    let sink = CsvSink::new(&ctx.args.out, "table4_search").expect("output dir");
    let mut rows = Vec::new();
    for (graph, rep) in [("original", &original), ("simulated_k1", &simulated)] {
        for s in rep.iter() {
            rows.push(vec![
                graph.to_string(),
                format!("{:?}", s.strategy),
                f2(s.mean),
                f2(s.std),
                f2(s.median),
                s.lengths.len().to_string(),
            ]);
        }
    }
    let path = sink
        .write(
            "table4.csv",
            &["graph", "strategy", "mu", "sigma", "median", "runs"],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
