//! **E2 — Table II + Figure 5**: dataset degree statistics and CDFs.
//!
//! Prints the μ/σ/max table for `Tags(r)`, `Res(t)` and `N_FG(t)` (paper
//! values alongside for comparison) and writes the three cumulative degree
//! distributions as CSV series.

use dharma_folksonomy::{cdf_points, DegreeStats, TagId};
use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let trg = &ctx.dataset.trg;
    let fg = &ctx.exact_fg;

    // Degree samples (active vertices only, as in the paper's snapshot).
    let tags_r: Vec<u64> = (0..trg.num_resources() as u32)
        .map(|r| trg.tag_degree(dharma_folksonomy::ResId(r)) as u64)
        .filter(|&d| d > 0)
        .collect();
    let res_t: Vec<u64> = (0..trg.num_tags() as u32)
        .map(|t| trg.res_degree(TagId(t)) as u64)
        .filter(|&d| d > 0)
        .collect();
    let nfg_t: Vec<u64> = (0..fg.num_tags() as u32)
        .map(|t| fg.out_degree(TagId(t)) as u64)
        .filter(|&d| d > 0)
        .collect();

    let s_tags = DegreeStats::from_sizes(tags_r.iter().copied());
    let s_res = DegreeStats::from_sizes(res_t.iter().copied());
    let s_nfg = DegreeStats::from_sizes(nfg_t.iter().copied());

    let mut t = TextTable::new(["Degree", "Tags(r)", "Res(t)", "NFG(t)"]);
    t.row([
        "mu".to_string(),
        f2(s_tags.mean),
        f2(s_res.mean),
        f2(s_nfg.mean),
    ]);
    t.row([
        "sigma".to_string(),
        f2(s_tags.std),
        f2(s_res.std),
        f2(s_nfg.std),
    ]);
    t.row([
        "max".to_string(),
        s_tags.max.to_string(),
        s_res.max.to_string(),
        s_nfg.max.to_string(),
    ]);
    t.row([
        "paper mu".to_string(),
        "5".to_string(),
        "26".to_string(),
        "316".to_string(),
    ]);
    t.row([
        "paper sigma".to_string(),
        "13".to_string(),
        "525".to_string(),
        "1569".to_string(),
    ]);
    t.row([
        "paper max".to_string(),
        "1182".to_string(),
        "109717".to_string(),
        "120568".to_string(),
    ]);
    t.print("Table II — Last.fm-like graph degree statistics");

    let stats = ctx.dataset.stats();
    println!(
        "\nsingleton tags: {:.1}% (paper ~55%)   single-tag resources: {:.1}% (paper ~40%)",
        stats.singleton_tag_fraction * 100.0,
        stats.singleton_resource_fraction * 100.0
    );

    let sink = CsvSink::new(&ctx.args.out, "fig5_degree_cdf").expect("output dir");
    for (name, series) in [
        ("tags_per_resource.csv", tags_r),
        ("res_per_tag.csv", res_t),
        ("nfg_per_tag.csv", nfg_t),
    ] {
        let cdf = cdf_points(series);
        let path = sink
            .write(
                name,
                &["size", "cumulative_probability"],
                cdf.into_iter()
                    .map(|(v, p)| vec![v.to_string(), format!("{p:.6}")]),
            )
            .expect("write csv");
        println!("wrote {}", path.display());
    }
}
