//! **A9 — ablation**: latency-blind lookups vs proximity neighbor
//! selection + latency-biased shortlists vs the same plus adaptive α
//! (`dharma-latency`).
//!
//! Three configurations replay the same single-GET-at-a-time workload on
//! one geo-clustered topology — four metro clusters (1–15 ms within,
//! 15–140 ms across, ±2 ms jitter), 1% baseline loss, and one designated
//! lossy cluster at 25% — measuring the wall-clock completion time of
//! every GET rather than its hop count:
//!
//! * **baseline** — the latency-blind protocol of every prior PR: pure-LRU
//!   routing, XOR-ordered shortlists, fixed α;
//! * **pns+bias** — RTT books feed proximity neighbor selection and
//!   latency-biased shortlist ordering (α stays fixed);
//! * **adaptive-α** — additionally widens lookup parallelism α=3..8 on
//!   timeouts and narrows it back on clean streaks.
//!
//! Acceptance bar (the ROADMAP item 3 target, checked and enforced here so
//! CI fails fast on a latency-path regression): vs baseline, the full
//! adaptive-α configuration must improve **both p50 and p95 GET completion
//! time by ≥ 30%** at **equal or lower datagrams per GET**, with lookup
//! success **≥ 99%** — faster *and* no chattier, not faster by flooding.
//!
//! `--smoke` shrinks the overlay and op count for the CI job. Besides the
//! CSV series, the run writes `latency.json` (the schema documented in
//! `crates/bench/README.md`) for the consolidated benchmark artifact.

use dharma_kademlia::LatencyConfig;
use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_latency, ExpArgs, LatencySimConfig, LatencySimReport};

fn report_row(mode: &str, rep: &LatencySimReport) -> Vec<String> {
    vec![
        mode.to_string(),
        format!("{:.1}", rep.p50_us as f64 / 1_000.0),
        format!("{:.1}", rep.p95_us as f64 / 1_000.0),
        format!("{:.1}", rep.mean_us / 1_000.0),
        f2(rep.messages_per_get),
        format!("{:.3}", rep.success_ratio),
        rep.pns_evictions.to_string(),
        rep.alpha_widened.to_string(),
        f2(rep.mean_final_alpha),
    ]
}

/// Serializes one report as a JSON object body (no external deps: the
/// fields are all numeric, so hand-rolling is trivial and deterministic).
fn json_object(mode: &str, rep: &LatencySimReport) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"gets\": {},\n",
            "      \"success_ratio\": {:.6},\n",
            "      \"p50_us\": {},\n",
            "      \"p95_us\": {},\n",
            "      \"mean_us\": {:.1},\n",
            "      \"max_us\": {},\n",
            "      \"messages_per_get\": {:.4},\n",
            "      \"rtt_samples\": {},\n",
            "      \"pns_evictions\": {},\n",
            "      \"alpha_widened\": {},\n",
            "      \"alpha_narrowed\": {},\n",
            "      \"mean_final_alpha\": {:.4}\n",
            "    }}"
        ),
        mode,
        rep.gets,
        rep.success_ratio,
        rep.p50_us,
        rep.p95_us,
        rep.mean_us,
        rep.max_us,
        rep.messages_per_get,
        rep.rtt_samples,
        rep.pns_evictions,
        rep.alpha_widened,
        rep.alpha_narrowed,
        rep.mean_final_alpha,
    )
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ablation_latency [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };

    let base = if smoke {
        LatencySimConfig {
            nodes: 32,
            keys: 16,
            warmup_ops: 240,
            ops: 400,
            seed: args.seed,
            ..LatencySimConfig::default()
        }
    } else {
        LatencySimConfig {
            seed: args.seed,
            ..LatencySimConfig::default()
        }
    };

    let run = |latency: Option<LatencyConfig>| -> LatencySimReport {
        simulate_latency(&LatencySimConfig {
            latency,
            ..base.clone()
        })
    };

    let baseline = run(None);
    let pns_bias = run(Some(
        LatencyConfig::builder()
            .adaptive_alpha(false)
            .build()
            .expect("pns+bias config is in range"),
    ));
    let full = run(Some(LatencyConfig::default()));

    let mut table = TextTable::new([
        "config",
        "p50 ms",
        "p95 ms",
        "mean ms",
        "msgs/GET",
        "success",
        "pns demotions",
        "α widened",
        "final α",
    ]);
    let rows = vec![
        report_row("baseline", &baseline),
        report_row("pns+bias", &pns_bias),
        report_row("adaptive-α", &full),
    ];
    for r in &rows {
        table.row(r.clone());
    }
    table.print(
        "Ablation A9 — latency-aware lookups on the clustered lossy topology (dharma-latency)",
    );
    println!(
        "(times are wall-clock GET completion on a 4-cluster topology, one \
         cluster lossy at 25%; msgs/GET counts every datagram sent during \
         the measured phase)"
    );

    // ----- the dharma-latency acceptance bar --------------------------
    let mut failures: Vec<String> = Vec::new();
    let p50_bar = (baseline.p50_us as f64 * 0.70) as u64;
    let p95_bar = (baseline.p95_us as f64 * 0.70) as u64;
    if full.p50_us > p50_bar {
        failures.push(format!(
            "p50 {} µs not >= 30% under the baseline {} µs (bar {} µs)",
            full.p50_us, baseline.p50_us, p50_bar
        ));
    }
    if full.p95_us > p95_bar {
        failures.push(format!(
            "p95 {} µs not >= 30% under the baseline {} µs (bar {} µs)",
            full.p95_us, baseline.p95_us, p95_bar
        ));
    }
    if full.messages_per_get > baseline.messages_per_get {
        failures.push(format!(
            "adaptive-α must not outspend the baseline: {:.2} vs {:.2} msgs/GET",
            full.messages_per_get, baseline.messages_per_get
        ));
    }
    if full.success_ratio < 0.99 {
        failures.push(format!(
            "lookup success {:.4} below the 99% floor",
            full.success_ratio
        ));
    }
    if pns_bias.pns_evictions == 0 {
        failures.push("PNS never demoted a slow bucket resident".to_string());
    }
    if full.alpha_widened == 0 {
        failures.push("adaptive α never widened on the lossy cluster".to_string());
    }
    if baseline.rtt_samples != 0 {
        failures.push("the latency-blind baseline recorded RTT samples".to_string());
    }

    let sink = CsvSink::new(&args.out, "ablation_latency").expect("output dir");
    let path = sink
        .write(
            "latency.csv",
            &[
                "config",
                "p50_ms",
                "p95_ms",
                "mean_ms",
                "messages_per_get",
                "success_ratio",
                "pns_evictions",
                "alpha_widened",
                "mean_final_alpha",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    let json = format!(
        "{{\n  \"experiment\": \"ablation_latency\",\n  \"smoke\": {},\n  \"seed\": {},\n  \"configs\": {{\n{},\n{},\n{}\n  }}\n}}\n",
        smoke,
        args.seed,
        json_object("baseline", &baseline),
        json_object("pns_bias", &pns_bias),
        json_object("adaptive_alpha", &full),
    );
    let json_path = std::path::Path::new(&args.out)
        .join("ablation_latency")
        .join("latency.json");
    std::fs::write(&json_path, json).expect("write json");
    println!("wrote {}", json_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
