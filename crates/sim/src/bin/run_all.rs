//! Runs every experiment binary's logic in sequence (E1–E6, A1–A4) at the
//! configured scale. Equivalent to invoking each binary, but shares one
//! dataset build. Mostly a convenience for regenerating EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1_costs",
        "fig5_degree_cdf",
        "fig6_degree_scatter",
        "fig8_weight_scatter",
        "table3_approx_quality",
        "table4_search",
        "fig7_search_cdf",
        "overlay_scaling",
        "ablation_policies",
        "ablation_k_sweep",
        "ablation_filtering",
        "ablation_cache",
        "ablation_churn",
        "ablation_adaptive",
        "trend_emergence",
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
