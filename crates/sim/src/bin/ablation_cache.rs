//! **A5 — ablation**: hot-block caching & adaptive replication under Zipf
//! GET load.
//!
//! The folksonomy workload concentrates GETs on a few popular tag blocks
//! (paper §III); in a plain overlay those land on the `k` nodes closest to
//! each hot key. This ablation sweeps the Zipf exponent and compares three
//! overlay configurations — baseline, hot-block caching (`dharma-cache`),
//! and caching plus popularity-driven adaptive replication — reporting the
//! cache hit ratio and how sharply GET load concentrates on the busiest
//! node. The acceptance bar for the subsystem: at s ≥ 1.0, over ≥ 1000 ops
//! on ≥ 64 nodes, hit ratio > 50% and ≥ 2× lower max per-node load.

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_cache_workload, CacheSimConfig, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let mut table = TextTable::new([
        "zipf s",
        "config",
        "hit ratio",
        "max load",
        "mean load",
        "msgs/GET",
        "promoted",
    ]);
    let mut rows = Vec::new();
    for s in [0.8f64, 1.0, 1.2, 1.4] {
        let base_cfg = CacheSimConfig {
            zipf_s: s,
            seed: args.seed,
            ..CacheSimConfig::default()
        };
        let configs = [
            ("baseline", None, None),
            ("cache", Some(CacheSimConfig::ablation_cache()), None),
            (
                "cache+repl",
                Some(CacheSimConfig::ablation_cache()),
                Some(CacheSimConfig::ablation_replication()),
            ),
        ];
        for (name, cache, replication) in configs {
            let rep = simulate_cache_workload(&CacheSimConfig {
                cache,
                replication,
                ..base_cfg.clone()
            });
            let row = vec![
                format!("{s:.1}"),
                name.to_string(),
                f2(rep.hit_ratio),
                rep.max_get_load.to_string(),
                f2(rep.mean_get_load),
                f2(rep.messages_per_get),
                rep.replicas_promoted.to_string(),
            ];
            table.row(row.clone());
            rows.push(row);
        }
    }
    table.print("Ablation A5 — hot-block caching & adaptive replication vs Zipf GET load");
    println!(
        "(hit ratio counts GETs answered by a requester-local or on-path cache; \
         max load is FIND_VALUEs at the busiest node)"
    );

    let sink = CsvSink::new(&args.out, "ablation_cache").expect("output dir");
    let path = sink
        .write(
            "cache.csv",
            &[
                "zipf_s",
                "config",
                "hit_ratio",
                "max_load",
                "mean_load",
                "msgs_per_get",
                "replicas_promoted",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
