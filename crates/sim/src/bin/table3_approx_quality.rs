//! **E5 — Table III**: approximated vs theoretic folksonomy graph.
//!
//! For k ∈ {1, 5, 10}: replay the annotation history with Approximations
//! A + B, then compare each tag's out-arcs against the exact FG — Recall,
//! Kendall τ (tie-corrected τ-b), cosine θ, and sim1% (share of *missing*
//! arcs whose exact weight is 1). Reported as μ and σ over tags, exactly
//! like the paper's table.

use dharma_folksonomy::compare::compare_graphs;
use dharma_sim::output::{f4, CsvSink, TextTable};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let sink = CsvSink::new(&ctx.args.out, "table3_approx_quality").expect("output dir");

    let mut table = TextTable::new(["k", "", "Recall", "Ktau", "theta", "sim1%"]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for k in [1usize, 5, 10] {
        let model = ctx.replay_paper(k);
        // min_arcs = 2: rank metrics need at least two arcs; matches the
        // comparison population the paper's metrics are defined on.
        let cmp = compare_graphs(&ctx.pool, &ctx.exact_fg, model.fg(), 2);
        table.row([
            k.to_string(),
            "mu".into(),
            f4(cmp.recall.mean()),
            f4(cmp.tau.mean()),
            f4(cmp.theta.mean()),
            f4(cmp.sim1.mean()),
        ]);
        table.row([
            String::new(),
            "sigma".into(),
            f4(cmp.recall.std()),
            f4(cmp.tau.std()),
            f4(cmp.theta.std()),
            f4(cmp.sim1.std()),
        ]);
        csv_rows.push(vec![
            k.to_string(),
            f4(cmp.recall.mean()),
            f4(cmp.recall.std()),
            f4(cmp.tau.mean()),
            f4(cmp.tau.std()),
            f4(cmp.theta.mean()),
            f4(cmp.theta.std()),
            f4(cmp.sim1.mean()),
            f4(cmp.sim1.std()),
        ]);
    }

    table.print("Table III — approximated vs theoretic folksonomy graph");
    println!(
        "\npaper (k=1):  Recall 0.6103±0.2798  Ktau 0.7636±0.2728  theta 0.8152±0.1978  sim1% 0.9214±0.1044"
    );
    println!(
        "paper (k=5):  Recall 0.7268±0.2730  Ktau 0.7638±0.2380  theta 0.8664±0.1636  sim1% 0.9346±0.0914"
    );
    println!(
        "paper (k=10): Recall 0.7841±0.2686  Ktau 0.7985±0.2138  theta 0.8971±0.1424  sim1% 0.9432±0.0850"
    );

    let path = sink
        .write(
            "table3.csv",
            &[
                "k",
                "recall_mu",
                "recall_sigma",
                "ktau_mu",
                "ktau_sigma",
                "theta_mu",
                "theta_sigma",
                "sim1_mu",
                "sim1_sigma",
            ],
            csv_rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
