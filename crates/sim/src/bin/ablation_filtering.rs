//! **A4 — ablation**: the index-side filtering cap.
//!
//! The paper fixes the displayed tag set to the top 100 "for visualisation"
//! and because of UDP payload limits (§V-A). This ablation sweeps the cap
//! and measures its effect on search convergence — smaller caps converge
//! faster but can starve the candidate set; an uncapped display is what a
//! taxonomy-style browser could never ship over UDP.

use dharma_folksonomy::SearchConfig;
use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_searches, ExpArgs, ExpContext, SearchSimConfig};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let caps: [Option<usize>; 6] = [Some(10), Some(25), Some(50), Some(100), Some(250), None];

    let mut table = TextTable::new([
        "display cap",
        "last mu",
        "rand mu",
        "first mu",
        "rand median",
    ]);
    let mut rows = Vec::new();
    for cap in caps {
        let cfg = SearchSimConfig {
            seeds: 50,
            random_runs: 30,
            search: SearchConfig {
                display_cap: cap,
                ..SearchConfig::default()
            },
            seed: ctx.args.seed,
        };
        let rep = simulate_searches(&ctx.pool, &ctx.dataset, &ctx.exact_fg, &cfg);
        let label = cap.map_or("none".to_string(), |c| c.to_string());
        table.row([
            label.clone(),
            f2(rep.last.mean),
            f2(rep.random.mean),
            f2(rep.first.mean),
            f2(rep.random.median),
        ]);
        rows.push(vec![
            label,
            f2(rep.last.mean),
            f2(rep.random.mean),
            f2(rep.first.mean),
            f2(rep.random.median),
        ]);
    }
    table.print("Ablation A4 — index-side filtering cap vs search convergence");
    println!("(the paper's cap of 100 sits on the flat part of the curve: filtering costs little precision)");

    let sink = CsvSink::new(&ctx.args.out, "ablation_filtering").expect("output dir");
    let path = sink
        .write(
            "filtering.csv",
            &["cap", "last_mu", "rand_mu", "first_mu", "rand_median"],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
