//! **A6 — ablation**: churn rate × repair on/off (`dharma-maint`).
//!
//! Sweeps membership churn (mean session length) against the maintenance
//! subsystem (liveness probes + join handoff + re-replication) and reports
//! the three numbers `dharma-maint` exists to move: lookup success rate,
//! data availability (mean of the curve + permanently lost records), and
//! maintenance message overhead per GET.
//!
//! Acceptance bar (checked and enforced here, so CI fails fast on a
//! churn-path regression): at 64 nodes, k = 20, Zipf(1.2) GETs and
//! moderate seeded churn, repair on must deliver ≥ 99% lookup success and
//! zero lost records, while repair off must show a degraded availability
//! curve. Runs are bit-identical for a fixed `--seed`.
//!
//! `--smoke` shrinks the sweep to one moderate-churn pair over a small
//! overlay and short horizon (the CI job).

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_churn, ChurnConfig, ChurnReport, ExpArgs};

/// Console row (human-formatted percentages).
fn table_row(label: &str, repair: &str, rep: &ChurnReport) -> Vec<String> {
    vec![
        label.to_string(),
        repair.to_string(),
        format!("{:.1}%", rep.lookup_success * 100.0),
        f2(rep.mean_availability),
        rep.lost_records.to_string(),
        rep.departures.to_string(),
        f2(rep.maint_msgs_per_get),
        rep.messages_total.to_string(),
    ]
}

/// CSV row (raw numerics only — downstream parsers get plain numbers).
fn csv_row(label: &str, repair: &str, rep: &ChurnReport) -> Vec<String> {
    vec![
        label.to_string(),
        repair.to_string(),
        format!("{:.6}", rep.lookup_success),
        format!("{:.6}", rep.mean_availability),
        rep.lost_records.to_string(),
        rep.departures.to_string(),
        format!("{:.4}", rep.maint_msgs_per_get),
        rep.messages_total.to_string(),
    ]
}

fn main() {
    // `--smoke` is this binary's own flag; everything else is ExpArgs.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ablation_churn [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };

    let base = if smoke {
        ChurnConfig {
            nodes: 24,
            k: 8,
            keys: 12,
            horizon_us: 60_000_000,
            op_interval_us: 500_000,
            mean_downtime_us: 5_000_000,
            sample_interval_us: 3_000_000,
            seed: args.seed,
            ..ChurnConfig::default()
        }
    } else {
        ChurnConfig {
            seed: args.seed,
            ..ChurnConfig::default()
        }
    };
    // Churn rows: mean session length as a fraction of the horizon.
    let sessions: Vec<(&str, u64)> = if smoke {
        vec![("moderate", 20_000_000)]
    } else {
        vec![
            ("light", 120_000_000),
            ("moderate", 60_000_000),
            ("heavy", 30_000_000),
        ]
    };
    let repair_cfg = if smoke {
        dharma_kademlia::MaintConfig::builder()
            .probe_interval_us(1_000_000)
            .repair_interval_us(6_000_000)
            .join_handoff(true)
            .demote_interval_us(None)
            .build()
            .expect("smoke repair config is in range")
    } else {
        ChurnConfig::ablation_repair()
    };

    let mut table = TextTable::new([
        "churn",
        "repair",
        "lookup ok",
        "mean avail",
        "lost",
        "departs",
        "maint/GET",
        "msgs",
    ]);
    let mut rows = Vec::new();
    let mut curves: Vec<(String, ChurnReport)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for (label, session) in &sessions {
        let mut with = base.clone();
        with.mean_session_us = *session;
        with.repair = Some(repair_cfg.clone());
        let rep_on = simulate_churn(&with);

        let mut without = with.clone();
        without.repair = None;
        let rep_off = simulate_churn(&without);

        for (mode, rep) in [("on", &rep_on), ("off", &rep_off)] {
            table.row(table_row(label, mode, rep));
            rows.push(csv_row(label, mode, rep));
            curves.push((format!("{label}-{mode}"), rep.clone()));
        }

        // The dharma-maint guarantee, enforced on the moderate row (and on
        // the single smoke row): repair keeps every record resolvable.
        if *label == "moderate" {
            let bar = if smoke { 0.95 } else { 0.99 };
            if rep_on.lookup_success < bar {
                failures.push(format!(
                    "repair-on lookup success {:.3} below the {bar} bar",
                    rep_on.lookup_success
                ));
            }
            if rep_on.lost_records != 0 {
                failures.push(format!(
                    "repair-on lost {} records (must be 0)",
                    rep_on.lost_records
                ));
            }
            if rep_off.mean_availability >= rep_on.mean_availability && rep_off.lost_records == 0 {
                failures.push(
                    "repair-off shows no degradation — the ablation is not exercising churn"
                        .to_string(),
                );
            }
        }
    }

    table.print("Ablation A6 — churn rate × repair on/off (dharma-maint)");
    println!(
        "(lookup ok counts GETs answered within {} retries; mean avail is the \
         availability-curve mean; lost is keys with no live holder at the end; \
         maint/GET is probes+handoffs+re-replications per GET)",
        base.get_retries
    );

    let sink = CsvSink::new(&args.out, "ablation_churn").expect("output dir");
    let path = sink
        .write(
            "churn.csv",
            &[
                "churn",
                "repair",
                "lookup_success",
                "mean_availability",
                "lost_records",
                "departures",
                "maint_msgs_per_get",
                "messages_total",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
    let curve_rows: Vec<Vec<String>> = curves
        .iter()
        .flat_map(|(label, rep)| {
            rep.availability_trace
                .iter()
                .map(move |(t, a)| vec![label.clone(), t.to_string(), f2(*a)])
        })
        .collect();
    let path = sink
        .write(
            "churn_availability.csv",
            &["config", "t_us", "availability"],
            curve_rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
