//! **A8 — ablation**: TTL-only cache expiry vs version gossip vs gossip
//! plus cache-aware (warm-peer) lookup routing vs write-triggered
//! invalidation push (`dharma-fresh`).
//!
//! Four configurations replay the same Zipf(1.2) GET workload with a
//! steady write trickle over a 64-node overlay, all with the same short
//! cache TTL:
//!
//! * **ttl-only** — the PR 2 cache: staleness bounded by TTL alone;
//! * **gossip** — version digests piggybacked on replies revalidate
//!   cached views (drop-or-refresh on stale, TTL restamp on confirmed);
//! * **gossip+warm** — additionally seeds GET shortlists with peers that
//!   recently served the key and prefers them during the lookup;
//! * **gossip+push** — additionally, holders push `InvalidatePush` to a
//!   key's recent fetchers on every applied write, so hot cached views
//!   converge in one RTT instead of waiting out a gossip interval.
//!
//! Acceptance bar (checked and enforced here, so CI fails fast on a
//! freshness-path regression): vs ttl-only, gossip+warm must deliver
//! **≥ 10 % higher cache hit ratio** *and* a **strictly smaller p99
//! staleness window**, and its warm-redirect routing must reduce the mean
//! lookup hops per GET below both the ttl-only row and the routing-less
//! gossip row. The push arm has its own bar: **p99 staleness below one
//! gossip interval (2 s)** for the hot-key workload, at **≤ 10 % extra
//! messages per GET** over the warm arm and a **hit ratio ≥ 0.34** — push
//! must buy exactness without giving the cache back.
//!
//! `--smoke` shrinks the overlay and op count for the CI job. Besides the
//! CSV series, the run writes `fresh.json` (the schema documented in
//! `crates/bench/README.md`) for the consolidated benchmark artifact.

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::{simulate_freshness, ExpArgs, FreshSimConfig, FreshSimReport};

fn report_row(mode: &str, rep: &FreshSimReport) -> Vec<String> {
    vec![
        mode.to_string(),
        f2(rep.hit_ratio),
        format!("{:.1}", rep.p99_staleness_us as f64 / 1_000.0),
        format!("{:.1}", rep.max_staleness_us as f64 / 1_000.0),
        f2(rep.mean_hops_per_get),
        rep.stale_drops.to_string(),
        rep.revalidations.to_string(),
        rep.warm_redirects.to_string(),
        rep.invalidate_pushes.to_string(),
    ]
}

/// Serializes one report as a JSON object body (no external deps: the
/// fields are all numeric, so hand-rolling is trivial and deterministic).
fn json_object(mode: &str, rep: &FreshSimReport) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"gets\": {},\n",
            "      \"writes\": {},\n",
            "      \"hit_ratio\": {:.6},\n",
            "      \"p99_staleness_us\": {},\n",
            "      \"max_staleness_us\": {},\n",
            "      \"mean_hops_per_get\": {:.4},\n",
            "      \"messages_per_get\": {:.4},\n",
            "      \"stale_drops\": {},\n",
            "      \"revalidations\": {},\n",
            "      \"warm_redirects\": {},\n",
            "      \"invalidate_pushes\": {}\n",
            "    }}"
        ),
        mode,
        rep.gets,
        rep.writes,
        rep.hit_ratio,
        rep.p99_staleness_us,
        rep.max_staleness_us,
        rep.mean_hops_per_get,
        rep.messages_per_get,
        rep.stale_drops,
        rep.revalidations,
        rep.warm_redirects,
        rep.invalidate_pushes,
    )
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let args = match ExpArgs::try_parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ablation_freshness [--smoke] [--seed N] [--out DIR]");
            std::process::exit(2);
        }
    };

    let base = if smoke {
        FreshSimConfig {
            nodes: 32,
            k: 6,
            keys: 16,
            ops: 600,
            seed: args.seed,
            ..FreshSimConfig::default()
        }
    } else {
        FreshSimConfig {
            seed: args.seed,
            ..FreshSimConfig::default()
        }
    };

    let run = |freshness, warm: bool| -> FreshSimReport {
        let mut f: Option<dharma_cache::FreshConfig> = freshness;
        if let Some(f) = f.as_mut() {
            f.cache_aware_routing = warm;
        }
        simulate_freshness(&FreshSimConfig {
            freshness: f,
            ..base.clone()
        })
    };

    let ttl_only = run(None, false);
    let gossip = run(Some(FreshSimConfig::ablation_freshness()), false);
    let warm = run(Some(FreshSimConfig::ablation_freshness()), true);
    let push = run(Some(FreshSimConfig::ablation_freshness_push()), true);

    let mut table = TextTable::new([
        "config",
        "hit ratio",
        "p99 stale ms",
        "max stale ms",
        "hops/GET",
        "stale drops",
        "revalidations",
        "warm redirects",
        "pushes",
    ]);
    let rows = vec![
        report_row("ttl-only", &ttl_only),
        report_row("gossip", &gossip),
        report_row("gossip+warm", &warm),
        report_row("gossip+push", &push),
    ];
    for r in &rows {
        table.row(r.clone());
    }
    table.print("Ablation A8 — cache freshness policy (dharma-fresh)");
    println!(
        "(staleness is how long the oldest write missing from a cache-served \
         view had been durable when the view was served; hops/GET counts \
         lookup datagrams only)"
    );

    // ----- the dharma-fresh acceptance bar ----------------------------
    let mut failures: Vec<String> = Vec::new();
    if warm.hit_ratio < ttl_only.hit_ratio * 1.10 {
        failures.push(format!(
            "hit ratio {:.3} not >= 10% over the TTL-only baseline {:.3}",
            warm.hit_ratio, ttl_only.hit_ratio
        ));
    }
    if warm.p99_staleness_us >= ttl_only.p99_staleness_us {
        failures.push(format!(
            "p99 staleness {} µs not strictly below the TTL-only baseline {} µs",
            warm.p99_staleness_us, ttl_only.p99_staleness_us
        ));
    }
    if warm.mean_hops_per_get >= ttl_only.mean_hops_per_get {
        failures.push(format!(
            "warm routing should cut hops/GET below ttl-only: {:.2} vs {:.2}",
            warm.mean_hops_per_get, ttl_only.mean_hops_per_get
        ));
    }
    if warm.mean_hops_per_get >= gossip.mean_hops_per_get {
        failures.push(format!(
            "warm routing should cut hops/GET below routing-less gossip: {:.2} vs {:.2}",
            warm.mean_hops_per_get, gossip.mean_hops_per_get
        ));
    }
    if warm.warm_redirects == 0 {
        failures.push("warm routing never redirected a query".to_string());
    }
    if gossip.stale_drops == 0 {
        failures.push("gossip never caught a stale view".to_string());
    }
    // ----- the invalidation-push bar ----------------------------------
    // One gossip interval is the staleness cadence push is meant to beat:
    // a pushed invalidation lands in one RTT, so hot-key staleness must
    // collapse below the 2 s digest cadence, and the pushes must pay for
    // themselves — no more than 10% message overhead per GET over the
    // warm arm, without giving back the cache hit ratio.
    if push.p99_staleness_us >= 2_000_000 {
        failures.push(format!(
            "push p99 staleness {} µs not below one gossip interval (2_000_000 µs)",
            push.p99_staleness_us
        ));
    }
    if push.messages_per_get > warm.messages_per_get * 1.10 {
        failures.push(format!(
            "push messages/GET {:.4} exceeds 110% of the warm arm's {:.4}",
            push.messages_per_get, warm.messages_per_get
        ));
    }
    if push.hit_ratio < 0.34 {
        failures.push(format!(
            "push hit ratio {:.3} below the 0.34 floor",
            push.hit_ratio
        ));
    }
    if push.invalidate_pushes == 0 {
        failures.push("push arm never sent an InvalidatePush".to_string());
    }

    let sink = CsvSink::new(&args.out, "ablation_freshness").expect("output dir");
    let path = sink
        .write(
            "freshness.csv",
            &[
                "config",
                "hit_ratio",
                "p99_staleness_ms",
                "max_staleness_ms",
                "hops_per_get",
                "stale_drops",
                "revalidations",
                "warm_redirects",
                "invalidate_pushes",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());

    let json = format!(
        "{{\n  \"experiment\": \"ablation_freshness\",\n  \"smoke\": {},\n  \"seed\": {},\n  \"configs\": {{\n{},\n{},\n{},\n{}\n  }}\n}}\n",
        smoke,
        args.seed,
        json_object("ttl_only", &ttl_only),
        json_object("gossip", &gossip),
        json_object("gossip_warm", &warm),
        json_object("gossip_push", &push),
    );
    let json_path = std::path::Path::new(&args.out)
        .join("ablation_freshness")
        .join("fresh.json");
    std::fs::write(&json_path, json).expect("write json");
    println!("wrote {}", json_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("acceptance checks passed ✓");
}
