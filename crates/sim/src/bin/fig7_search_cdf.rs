//! **E6 — Figure 7**: CDFs of faceted-search path lengths, per strategy,
//! original vs approximated (k = 1) graph.

use dharma_sim::output::CsvSink;
use dharma_sim::{simulate_searches, ExpArgs, ExpContext, SearchSimConfig};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let cfg = SearchSimConfig {
        seed: ctx.args.seed,
        ..SearchSimConfig::default()
    };

    let original = simulate_searches(&ctx.pool, &ctx.dataset, &ctx.exact_fg, &cfg);
    let model = ctx.replay_paper(1);
    let approximated = simulate_searches(&ctx.pool, &ctx.dataset, model.fg(), &cfg);

    let sink = CsvSink::new(&ctx.args.out, "fig7_search_cdf").expect("output dir");
    for (graph, rep) in [("original", &original), ("approximated", &approximated)] {
        for stats in rep.iter() {
            let name = format!("{}_{:?}.csv", graph, stats.strategy).to_lowercase();
            let path = sink
                .write(
                    &name,
                    &["steps", "cumulative_probability"],
                    stats
                        .cdf()
                        .into_iter()
                        .map(|(v, p)| vec![v.to_string(), format!("{p:.6}")]),
                )
                .expect("write csv");
            println!("wrote {}", path.display());
        }
    }

    // Quick textual summary: P[steps <= x] at a few x per series.
    println!("\nFigure 7 — CDF checkpoints (P[steps <= x])");
    for (graph, rep) in [("original", &original), ("approximated", &approximated)] {
        for stats in rep.iter() {
            let cdf = stats.cdf();
            let at = |x: u64| -> f64 {
                cdf.iter()
                    .take_while(|(v, _)| *v <= x)
                    .last()
                    .map(|(_, p)| *p)
                    .unwrap_or(0.0)
            };
            println!(
                "{graph:>13} {:?}: P[<=3]={:.2} P[<=5]={:.2} P[<=10]={:.2} P[<=20]={:.2}",
                stats.strategy,
                at(3),
                at(5),
                at(10),
                at(20)
            );
        }
    }
    println!("(paper: approximated CDFs dominate the original ones — shorter paths, especially for 'first')");
}
