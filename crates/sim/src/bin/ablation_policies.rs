//! **A1 — ablation**: which approximation causes which effect?
//!
//! Replays the same history under five policies — exact, A-only (k), B-only,
//! A+B (the paper's), and the literal reading of Approximation B — and
//! reports the Table III metrics for each. This isolates the contributions:
//! A drops arcs (recall), B flattens weights (θ), and together they shed the
//! noise tail (sim1%).

use dharma_folksonomy::compare::compare_graphs;
use dharma_folksonomy::{ApproxPolicy, BPolicy};
use dharma_sim::output::{f4, CsvSink, TextTable};
use dharma_sim::replay::{EventOrder, ReplayConfig};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let k = 5usize;

    let policies: Vec<(&str, ApproxPolicy)> = vec![
        ("exact", ApproxPolicy::EXACT),
        ("A only", ApproxPolicy::a_only(k)),
        ("B only", ApproxPolicy::b_only()),
        ("A + B (paper)", ApproxPolicy::paper(k)),
        (
            "A + literal-B",
            ApproxPolicy {
                connection_k: Some(k),
                b_policy: BPolicy::LiteralB,
            },
        ),
    ];

    let mut table = TextTable::new([
        "policy",
        "arcs",
        "Recall mu",
        "Ktau mu",
        "theta mu",
        "sim1% mu",
    ]);
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let model = ctx.replay_with(&ReplayConfig {
            policy,
            order: EventOrder::PopularityBiased,
            seed: ctx.args.seed,
        });
        let cmp = compare_graphs(&ctx.pool, &ctx.exact_fg, model.fg(), 2);
        table.row([
            name.to_string(),
            model.fg().num_arcs().to_string(),
            f4(cmp.recall.mean()),
            f4(cmp.tau.mean()),
            f4(cmp.theta.mean()),
            f4(cmp.sim1.mean()),
        ]);
        rows.push(vec![
            name.to_string(),
            model.fg().num_arcs().to_string(),
            f4(cmp.recall.mean()),
            f4(cmp.tau.mean()),
            f4(cmp.theta.mean()),
            f4(cmp.sim1.mean()),
        ]);
    }

    table.print(&format!("Ablation A1 — approximation policies (k = {k})"));
    println!("(exact reproduces the derived FG: recall = tau = theta = 1; A drops arcs; B rescales weights)");

    let sink = CsvSink::new(&ctx.args.out, "ablation_policies").expect("output dir");
    let path = sink
        .write(
            "policies.csv",
            &[
                "policy",
                "arcs",
                "recall_mu",
                "ktau_mu",
                "theta_mu",
                "sim1_mu",
            ],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
