//! **A3 — overlay validation**: Kademlia lookup message cost vs network
//! size. Lookups should cost `O(log n)` messages; this calibrates the
//! substrate independently of DHARMA.

use dharma_sim::output::{f2, CsvSink, TextTable};
use dharma_sim::overlay::{build_overlay, OverlayConfig};
use dharma_sim::ExpArgs;
use dharma_types::sha1;

fn main() {
    let args = ExpArgs::parse();
    let sink = CsvSink::new(&args.out, "overlay_scaling").expect("output dir");

    let mut table = TextTable::new(["nodes", "mean msgs/GET", "mean msgs/PUT", "log2(n)"]);
    let mut rows = Vec::new();
    for nodes in [16usize, 32, 64, 128, 256, 512] {
        let mut net = build_overlay(&OverlayConfig {
            nodes,
            seed: args.seed,
            ..OverlayConfig::default()
        });

        // Store then fetch a set of keys from random homes.
        let trials = 24u32;
        let mut put_msgs = 0u64;
        let mut get_msgs = 0u64;
        for i in 0..trials {
            let key = sha1(format!("scaling-{nodes}-{i}").as_bytes());
            let home = (i % (nodes as u32 - 1)) + 1;
            let before = net.counters().sent();
            net.with_node(home, |n, ctx| n.put_blob(ctx, key, vec![0u8; 32]));
            net.run_until_idle(u64::MAX);
            put_msgs += net.counters().sent() - before;

            let reader = ((i + 7) % (nodes as u32 - 1)) + 1;
            let before = net.counters().sent();
            net.with_node(reader, |n, ctx| n.get(ctx, key, 0));
            net.run_until_idle(u64::MAX);
            get_msgs += net.counters().sent() - before;
        }
        net.take_completions();

        let get = get_msgs as f64 / f64::from(trials);
        let put = put_msgs as f64 / f64::from(trials);
        table.row([
            nodes.to_string(),
            f2(get),
            f2(put),
            f2((nodes as f64).log2()),
        ]);
        rows.push(vec![
            nodes.to_string(),
            f2(get),
            f2(put),
            f2((nodes as f64).log2()),
        ]);
    }
    table.print("Overlay scaling — messages per lookup vs network size");
    println!("(expected: sub-linear growth tracking log2(n), validating the O(log n) lookup cost)");

    let path = sink
        .write(
            "scaling.csv",
            &["nodes", "get_msgs", "put_msgs", "log2n"],
            rows,
        )
        .expect("write csv");
    println!("wrote {}", path.display());
}
