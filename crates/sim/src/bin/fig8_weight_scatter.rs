//! **E4 — Figure 8**: original vs simulated FG arc weights, k ∈ {1, 25, 500}.
//!
//! The dual of Figure 6: arc *weights* are significantly reduced at low k
//! (the slope drops well below 1), which is why the paper argues for rank
//! preservation (Table III) instead of absolute-weight fidelity.

use dharma_folksonomy::compare::weight_pairs;
use dharma_sim::output::{f4, thin_scatter, CsvSink, TextTable};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let sink = CsvSink::new(&ctx.args.out, "fig8_weight_scatter").expect("output dir");

    let mut table = TextTable::new(["k", "common arcs", "slope (sim/orig)", "mean ratio"]);
    for k in [1usize, 25, 500] {
        let model = ctx.replay_paper(k);
        let pairs = weight_pairs(&ctx.exact_fg, model.fg(), false);

        let (mut sxy, mut sxx) = (0f64, 0f64);
        let mut ratio_sum = 0f64;
        for &(orig, sim) in &pairs {
            let (x, y) = (orig as f64, sim as f64);
            sxy += x * y;
            sxx += x * x;
            ratio_sum += y / x;
        }
        table.row([
            k.to_string(),
            pairs.len().to_string(),
            f4(sxy / sxx),
            f4(ratio_sum / pairs.len() as f64),
        ]);

        let path = sink
            .write(
                &format!("weight_scatter_k{k}.csv"),
                &["original_weight", "simulated_weight"],
                thin_scatter(pairs, 5_000)
                    .into_iter()
                    .map(|(a, b)| vec![a.to_string(), b.to_string()]),
            )
            .expect("write csv");
        println!("wrote {}", path.display());
    }
    table.print("Figure 8 — original vs simulated FG arc weights");
    println!("(paper: weights significantly reduced for low k; raising k closes the gap)");
}
