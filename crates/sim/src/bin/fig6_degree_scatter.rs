//! **E3 — Figure 6**: original vs simulated FG node out-degree, k ∈ {1, 100}.
//!
//! The paper's headline observation: even at k = 1 the scatter hugs the
//! diagonal — approximation barely affects which *neighbors* a tag has, only
//! the arc weights. We print the per-k regression slope and mean relative
//! degree ratio, and write thinned scatter CSVs.

use dharma_folksonomy::compare::degree_pairs;
use dharma_sim::output::{f4, thin_scatter, CsvSink, TextTable};
use dharma_sim::{ExpArgs, ExpContext};

fn main() {
    let ctx = ExpContext::build(ExpArgs::parse());
    let sink = CsvSink::new(&ctx.args.out, "fig6_degree_scatter").expect("output dir");

    let mut table = TextTable::new(["k", "tags", "slope (sim/orig)", "mean ratio", "min ratio"]);
    for k in [1usize, 100] {
        let model = ctx.replay_paper(k);
        let pairs = degree_pairs(&ctx.exact_fg, model.fg());

        // Least-squares through the origin: slope = Σxy / Σx².
        let (mut sxy, mut sxx) = (0f64, 0f64);
        let mut ratio_sum = 0f64;
        let mut ratio_min = f64::INFINITY;
        for &(orig, sim) in &pairs {
            let (x, y) = (orig as f64, sim as f64);
            sxy += x * y;
            sxx += x * x;
            let r = y / x;
            ratio_sum += r;
            ratio_min = ratio_min.min(r);
        }
        let slope = sxy / sxx;
        table.row([
            k.to_string(),
            pairs.len().to_string(),
            f4(slope),
            f4(ratio_sum / pairs.len() as f64),
            f4(ratio_min),
        ]);

        let path = sink
            .write(
                &format!("degree_scatter_k{k}.csv"),
                &["original_out_degree", "simulated_out_degree"],
                thin_scatter(pairs, 5_000)
                    .into_iter()
                    .map(|(a, b)| vec![a.to_string(), b.to_string()]),
            )
            .expect("write csv");
        println!("wrote {}", path.display());
    }
    table.print("Figure 6 — original vs simulated FG nodal out-degree");
    println!("(paper: points aligned on a line with slope close to the diagonal, even for k = 1)");
}
