//! Experiment drivers reproducing every table and figure of the DHARMA
//! paper's evaluation (§V), plus the ablations listed in DESIGN.md.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_costs` | Table I — primitive costs in overlay lookups |
//! | `fig5_degree_cdf` | Table II + Figure 5 — dataset degree statistics/CDFs |
//! | `fig6_degree_scatter` | Figure 6 — original vs simulated FG out-degrees |
//! | `fig8_weight_scatter` | Figure 8 — original vs simulated FG arc weights |
//! | `table3_approx_quality` | Table III — recall / Kendall τ / cosine / sim1% |
//! | `table4_search` / `fig7_search_cdf` | Table IV + Figure 7 — search paths |
//! | `overlay_scaling` | A3 — Kademlia lookup cost vs network size |
//! | `ablation_policies` / `ablation_k_sweep` / `ablation_filtering` | A1/A2/A4 |
//! | `ablation_cache` | A5 — hot-block caching & adaptive replication vs Zipf load |
//! | `ablation_churn` | A6 — churn rate × repair on/off (`dharma-maint`) |
//! | `ablation_adaptive` | A7 — fixed vs adaptive cadence × churn, graceful leave (`dharma-adapt`) |
//! | `ablation_freshness` | A8 — TTL-only vs version gossip vs gossip + warm routing (`dharma-fresh`) |
//! | `ablation_latency` | A9 — latency-blind vs PNS + biased shortlists vs + adaptive α on the clustered lossy topology (`dharma-latency`) |
//! | `ablation_scale` | A-scale — serial vs sharded engine throughput at 1k/10k nodes (events/sec, peak RSS) |
//! | `bench_udp` | real-socket transport bench — syscall-batching microbench + multi-process UDP swarm |
//! | `bench_ci` | consolidated `BENCH_ci.json` for the CI bench job (`--compare` = trend gate) |
//! | `run_all` | everything above, in sequence |
//!
//! Each binary prints the paper-shaped table to stdout and writes CSV series
//! under `--out` (default `results/`). All runs are seeded and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod bench_compare;
pub mod cache_sim;
pub mod churn;
pub mod fresh_sim;
pub mod latency_sim;
pub mod output;
pub mod overlay;
pub mod parallel_replay;
pub mod pipeline;
pub mod replay;
pub mod scale;
pub mod search_sim;
pub mod trend;
pub mod udp_bench;

pub use args::ExpArgs;
pub use cache_sim::{simulate_cache_workload, CacheSimConfig, CacheSimReport};
pub use churn::{simulate_churn, ChurnConfig, ChurnReport};
pub use fresh_sim::{simulate_freshness, FreshSimConfig, FreshSimReport};
pub use latency_sim::{simulate_latency, LatencySimConfig, LatencySimReport};
pub use parallel_replay::replay_parallel;
pub use pipeline::ExpContext;
pub use replay::{replay, EventOrder, ReplayConfig};
pub use scale::{
    measure_engine_run, peak_rss_bytes, scale_bench, scale_full, scale_smoke, EngineRun,
};
pub use search_sim::{simulate_searches, SearchSimConfig, SearchSimReport, StrategyStats};
pub use trend::{run_trend, TrendConfig, TrendReport};
pub use udp_bench::{
    maybe_run_swarm_child, run_swarm_multiprocess, run_swarm_threaded, transport_microbench,
    MicrobenchReport, SwarmReport, UdpBenchConfig,
};
