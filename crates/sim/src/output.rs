//! Table rendering and CSV emission for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dharma_types::Result;

/// A simple fixed-width text table, printed in the paper's row/column shape.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].chars().count();
            for r in &self.rows {
                width[c] = width[c].max(r[c].chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                let pad = width[c] - cell.chars().count();
                s.push_str(cell);
                s.extend(std::iter::repeat_n(' ', pad));
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout with a caption.
    pub fn print(&self, caption: &str) {
        println!("\n== {caption} ==");
        print!("{}", self.render());
    }
}

/// A CSV writer rooted at the experiment output directory.
pub struct CsvSink {
    dir: PathBuf,
}

impl CsvSink {
    /// Creates (and mkdir -p's) a sink under `dir/experiment`.
    pub fn new(dir: &str, experiment: &str) -> Result<Self> {
        let dir = Path::new(dir).join(experiment);
        fs::create_dir_all(&dir)?;
        Ok(CsvSink { dir })
    }

    /// Writes a CSV file with the given header and rows.
    pub fn write(
        &self,
        file: &str,
        header: &[&str],
        rows: impl IntoIterator<Item = Vec<String>>,
    ) -> Result<PathBuf> {
        let path = self.dir.join(file);
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float the way the paper's tables do (4 significant decimals).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Down-samples a scatter series to at most `max_points`, keeping extremes —
/// the figures plot hundreds of thousands of points, which is pointless in
/// CSV; systematic sampling preserves the visual shape.
pub fn thin_scatter(mut points: Vec<(u64, u64)>, max_points: usize) -> Vec<(u64, u64)> {
    if points.len() <= max_points {
        return points;
    }
    points.sort_unstable();
    let stride = points.len() as f64 / max_points as f64;
    let mut out = Vec::with_capacity(max_points);
    let mut next = 0f64;
    for (i, p) in points.iter().enumerate() {
        if i as f64 >= next {
            out.push(*p);
            next += stride;
        }
    }
    // Always keep the maximum point.
    if let Some(last) = points.last() {
        if out.last() != Some(last) {
            out.push(*last);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Primitive", "lookups"]);
        t.row(["Insert", "2 + 2m"]);
        t.row(["Tag (naive)", "4 + |Tags(r)|"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Primitive"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dharma-csv-{}", std::process::id()));
        let sink = CsvSink::new(dir.to_str().unwrap(), "test").unwrap();
        let path = sink
            .write(
                "x.csv",
                &["a", "b"],
                vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            )
            .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scatter_thinning_keeps_shape() {
        let points: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i * 2)).collect();
        let thin = thin_scatter(points.clone(), 100);
        assert!(thin.len() <= 101);
        assert_eq!(thin.first(), Some(&(0, 0)));
        assert_eq!(thin.last(), Some(&(9_999, 19_998)));
        // Small inputs pass through.
        let small = vec![(5u64, 6u64)];
        assert_eq!(thin_scatter(small.clone(), 100), small);
    }
}
