//! Cache-freshness workload driver: the `dharma-fresh` evaluation.
//!
//! PR 2's hot-block cache trades staleness for hit ratio through a single
//! TTL knob: a short TTL keeps cached views fresh but re-fetches hot
//! blocks constantly, a long one serves stale data for its whole length.
//! Version gossip breaks the trade-off — digests piggybacked on replies
//! revalidate cached views between writes — and cache-aware routing sends
//! repeat GETs to peers that served the key before. This driver measures
//! both against the TTL-only baseline on the workload that matters: Zipf
//! GETs with a steady trickle of writes to the same keys.
//!
//! Every write appends a **uniquely named** entry through the overlay, so
//! the driver can tell exactly which writes any served view includes. For
//! each GET answered `from_cache`, the **staleness window** sample is how
//! long the oldest write missing from the served view had been completed
//! when the view was served (0 for complete views and authoritative
//! reads). The report's p99/max over all GETs, the cache hit ratio, and
//! the mean lookup messages per GET (hops) are the three numbers the
//! `ablation_freshness` acceptance bar is built on.

use dharma_cache::{CacheConfig, FreshConfig, PopularityConfig};
use dharma_dataset::Zipf;
use dharma_kademlia::{KadOutput, KademliaNode, MaintConfig, StoredEntry};
use dharma_net::SimNet;
use dharma_types::{sha1, Id160};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::overlay::{build_overlay, OverlayConfig};

/// Freshness-workload parameters.
#[derive(Clone, Debug)]
pub struct FreshSimConfig {
    /// Overlay size.
    pub nodes: usize,
    /// Kademlia replication factor.
    pub k: usize,
    /// Distinct tag-block keys.
    pub keys: usize,
    /// GET operations to replay.
    pub ops: usize,
    /// Zipf exponent of the key-popularity distribution.
    pub zipf_s: f64,
    /// Index-side filtering limit on every GET (0 = unfiltered, so served
    /// views list every entry and staleness is computed exactly).
    pub top_n: u32,
    /// One overlay APPEND is issued every this many GETs (0 = no writes).
    pub write_every: usize,
    /// Virtual time between consecutive GETs, µs (paces the replay so
    /// TTLs and maintenance cadences mean something).
    pub op_interval_us: u64,
    /// Hot-block cache on every node.
    pub cache: CacheConfig,
    /// Version gossip / cache-aware routing (`None` = TTL-only baseline).
    pub freshness: Option<FreshConfig>,
    /// Maintenance loop (probes carry `Pong` digests); kept identical
    /// across compared configurations.
    pub maintenance: Option<MaintConfig>,
    /// Holder turnover: every this many GETs, one current authoritative
    /// holder of the hottest key departs for good and a fresh-identity
    /// node joins in its place (0 = stable membership). Requires a
    /// repair-enabled [`FreshSimConfig::maintenance`] or records die with
    /// their holders. This is the churn-integration scenario: cached
    /// views must stay bounded-stale while the nodes that minted them
    /// disappear.
    pub turnover_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FreshSimConfig {
    fn default() -> Self {
        FreshSimConfig {
            nodes: 64,
            k: 8,
            keys: 24,
            ops: 1500,
            zipf_s: 1.2,
            top_n: 0,
            write_every: 10,
            op_interval_us: 30_000,
            cache: FreshSimConfig::ablation_cache(),
            freshness: None,
            maintenance: Some(FreshSimConfig::ablation_maintenance()),
            turnover_every: 0,
            seed: 42,
        }
    }
}

impl FreshSimConfig {
    /// The cache configuration of the ablation rows: a deliberately short
    /// TTL (5 virtual seconds), so the staleness/hit-ratio trade-off the
    /// gossip is meant to break is actually exercised.
    pub fn ablation_cache() -> CacheConfig {
        CacheConfig {
            capacity: 256,
            ttl_us: 5_000_000,
        }
    }

    /// The freshness configuration of the gossip rows.
    pub fn ablation_freshness() -> FreshConfig {
        FreshConfig::builder()
            .digest_max(8)
            .news_window_us(10_000_000)
            .hit_half_life_us(30_000_000)
            .warm_threshold(0.5)
            .max_view_lifetime_us(60_000_000) // 12 TTLs: the hard ceiling
            .refresh_age_us(1_750_000) // refresh well before the bar
            .max_serve_age_us(3_500_000) // 70% of the TTL: the staleness bound
            .build()
            .expect("ablation freshness config is in range")
    }

    /// The gossip configuration plus write-triggered invalidation push:
    /// holders notify a key's recent fetchers directly on every applied
    /// write, so hot cached views converge in one RTT instead of a gossip
    /// interval.
    pub fn ablation_freshness_push() -> FreshConfig {
        let mut cfg = FreshSimConfig::ablation_freshness();
        cfg.push_on_write = true;
        // Push only to fetchers whose cached views could still be served
        // stale: past the serve-age bar a view needs a fresh confirmation
        // anyway, so invalidating it buys nothing — and the window is
        // what keeps the push overhead within the 10% messages/GET bar.
        cfg.push_window_us = cfg.max_serve_age_us;
        // One extra slot of fan-out over the default: unacked pushes cost
        // one datagram, so wider coverage is what buys the sub-interval
        // p99 at both the full and the --smoke scale.
        cfg.push_fanout = 5;
        cfg
    }

    /// A light liveness loop (probes every 2 s, repair effectively off):
    /// its only role here is carrying `Pong` digests, and it runs in every
    /// configuration so the comparison stays fair.
    pub fn ablation_maintenance() -> MaintConfig {
        MaintConfig::builder()
            .probe_interval_us(2_000_000)
            .repair_interval_us(3_600_000_000)
            .join_handoff(false)
            .demote_interval_us(None)
            .build()
            .expect("ablation maintenance config is in range")
    }

    /// Popularity tracking with promotion disabled (an impossibly high
    /// hot threshold): holders rank their hottest keys for the digest
    /// without adaptive replication muddying the comparison.
    fn tracking_only_popularity() -> PopularityConfig {
        PopularityConfig {
            hot_threshold: f64::INFINITY,
            ..PopularityConfig::default()
        }
    }
}

/// What one freshness replay measured.
#[derive(Clone, Debug)]
pub struct FreshSimReport {
    /// GET operations replayed.
    pub gets: u64,
    /// Overlay APPENDs issued during the GET phase.
    pub writes: u64,
    /// GETs answered from a hot-block cache.
    pub cache_hits: u64,
    /// `cache_hits / gets`.
    pub hit_ratio: f64,
    /// p99 of the per-GET staleness-window samples, µs (0 = the 99th
    /// percentile GET served a complete view).
    pub p99_staleness_us: u64,
    /// Worst staleness window observed, µs.
    pub max_staleness_us: u64,
    /// Mean lookup datagrams per GET (the hop cost; 0 for local hits).
    pub mean_hops_per_get: f64,
    /// All datagrams sent per GET (lookups + gossip + maintenance).
    pub messages_per_get: f64,
    /// Version-gossip revalidation RPCs issued.
    pub revalidations: u64,
    /// Cached views dropped on stale digests.
    pub stale_drops: u64,
    /// Lookup queries redirected to warm peers.
    pub warm_redirects: u64,
    /// Write-triggered `InvalidatePush` messages sent by holders.
    pub invalidate_pushes: u64,
    /// Holder departures + replacement joins executed.
    pub turnovers: u64,
    /// GETs that found no value at all (churn casualties).
    pub lookup_failures: u64,
}

/// Drives the net until `op` completes, pacing in small virtual-time
/// slices (maintenance timers re-arm forever, so idle-draining would
/// fast-forward through years of sweeps).
fn drive_to_completion(net: &mut SimNet<KademliaNode>, op: u64) -> KadOutput {
    let deadline = net.now_us() + 10_000_000;
    loop {
        for (id, out) in net.take_completions() {
            if id == op {
                return out;
            }
        }
        assert!(
            net.now_us() < deadline,
            "operation {op} still pending after 10 virtual seconds"
        );
        net.run_until(net.now_us() + 5_000);
    }
}

/// Replays the freshness workload of [`FreshSimConfig`] and reports hit
/// ratio, staleness percentiles and lookup cost.
pub fn simulate_freshness(cfg: &FreshSimConfig) -> FreshSimReport {
    assert!(cfg.nodes >= 4, "need an overlay");
    assert!(cfg.keys >= 1 && cfg.ops >= 1);
    let overlay = OverlayConfig {
        nodes: cfg.nodes,
        k: cfg.k,
        seed: cfg.seed,
        cache: Some(cfg.cache.clone()),
        replication: Some(FreshSimConfig::tracking_only_popularity()),
        maintenance: cfg.maintenance.clone(),
        freshness: cfg.freshness.clone(),
        ..OverlayConfig::default()
    };
    let mut net = build_overlay(&overlay);
    let counters = net.counters();
    // The fresh-identity nodes the turnover scenario spawns run exactly
    // the fleet's protocol config.
    let spawn_kad = overlay.kad_config(counters.clone());
    let rendezvous = net.node(0).contact().clone();
    let mut live: Vec<u32> = (0..cfg.nodes as u32).collect();
    let mut next_slot = cfg.nodes as u32;

    // Populate each tag block with a handful of uniquely named entries.
    let keys: Vec<Id160> = (0..cfg.keys)
        .map(|i| sha1(format!("fresh-block-{i}").as_bytes()))
        .collect();
    // Per key: the names of all writes applied so far, with the virtual
    // time their overlay APPEND completed — the staleness reference.
    let mut write_log: Vec<Vec<(u64, String)>> = vec![Vec::new(); cfg.keys];
    for (i, key) in keys.iter().enumerate() {
        let writer = live[i % live.len()];
        let entries: Vec<StoredEntry> = (0..4)
            .map(|e| StoredEntry {
                name: format!("seed-{e}"),
                weight: 1,
            })
            .collect();
        let op = net.with_node(writer, |n, ctx| n.append_many(ctx, *key, entries));
        drive_to_completion(&mut net, op);
        let done = net.now_us();
        for e in 0..4 {
            write_log[i].push((done, format!("seed-{e}")));
        }
    }

    let hits_before = counters.cache_hits();
    let misses_before = counters.cache_misses();
    let sent_before = counters.sent();

    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF4E54);
    let mut staleness: Vec<u64> = Vec::with_capacity(cfg.ops);
    let mut lookup_msgs = 0u64;
    let mut writes = 0u64;
    let mut write_seq = 0u64;
    let mut turnovers = 0u64;
    let mut lookup_failures = 0u64;
    for i in 0..cfg.ops {
        net.run_until(net.now_us() + cfg.op_interval_us);
        net.take_completions();
        if cfg.turnover_every > 0 && i > 0 && i % cfg.turnover_every == 0 {
            // One authoritative holder of the hottest key departs for
            // good (never the rendezvous); a fresh identity joins. Repair
            // and join-handoff must rebuild the replica set — and every
            // cached view minted from the departed holder must stay
            // bounded-stale through the turnover.
            let victim = live
                .iter()
                .copied()
                .find(|&a| a != 0 && net.node(a).storage().contains(&keys[0]));
            if let Some(victim) = victim {
                net.remove(victim);
                live.retain(|&a| a != victim);
                let id = Id160::random(&mut rng);
                let node = KademliaNode::new(id, next_slot, spawn_kad.clone());
                let addr = net.spawn(node);
                next_slot += 1;
                net.node_mut(addr).add_seed(rendezvous.clone());
                net.with_node(addr, |n, ctx| {
                    n.bootstrap(ctx);
                });
                live.push(addr);
                turnovers += 1;
            }
        }
        if cfg.write_every > 0 && i % cfg.write_every == 0 {
            // A write lands on a Zipf-drawn key from a rotating writer —
            // hot keys are rewritten most, which is exactly the staleness
            // hazard the gossip exists for.
            let key_idx = zipf.sample(&mut rng);
            let writer = live[(i / cfg.write_every) % live.len()];
            let name = format!("w-{write_seq}");
            write_seq += 1;
            let key = keys[key_idx];
            let wname = name.clone();
            let op = net.with_node(writer, |n, ctx| n.append(ctx, key, &wname, 1));
            drive_to_completion(&mut net, op);
            write_log[key_idx].push((net.now_us(), name));
            writes += 1;
        }
        let key_idx = zipf.sample(&mut rng);
        let requester = live[i % live.len()];
        let issued_at = net.now_us();
        let op = net.with_node(requester, |n, ctx| n.get(ctx, keys[key_idx], cfg.top_n));
        let out = drive_to_completion(&mut net, op);
        let KadOutput::Value { value, messages } = out else {
            panic!("GET completed with a non-value output");
        };
        lookup_msgs += u64::from(messages);
        if value.is_none() {
            lookup_failures += 1;
        }
        let sample = match value {
            Some(v) if v.from_cache => {
                // Which writes completed before this GET was issued but
                // are missing from the served view?
                let oldest_missing = write_log[key_idx]
                    .iter()
                    .filter(|(done, name)| {
                        *done <= issued_at && !v.entries.iter().any(|e| &e.name == name)
                    })
                    .map(|(done, _)| *done)
                    .min();
                oldest_missing
                    .map(|t| net.now_us().saturating_sub(t))
                    .unwrap_or(0)
            }
            _ => 0,
        };
        staleness.push(sample);
    }

    let gets = cfg.ops as u64;
    let cache_hits = counters.cache_hits() - hits_before;
    let cache_misses = counters.cache_misses() - misses_before;
    assert_eq!(cache_hits + cache_misses, gets, "every GET is accounted");
    staleness.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((staleness.len() as f64 * p).ceil() as usize).saturating_sub(1);
        staleness[idx.min(staleness.len() - 1)]
    };
    FreshSimReport {
        gets,
        writes,
        cache_hits,
        hit_ratio: cache_hits as f64 / gets as f64,
        p99_staleness_us: pct(0.99),
        max_staleness_us: *staleness.last().expect("ops >= 1"),
        mean_hops_per_get: lookup_msgs as f64 / gets as f64,
        messages_per_get: (counters.sent() - sent_before) as f64 / gets as f64,
        revalidations: counters.revalidations(),
        stale_drops: counters.stale_drops(),
        warm_redirects: counters.warm_redirects(),
        invalidate_pushes: counters.invalidate_pushes(),
        turnovers,
        lookup_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(freshness: Option<FreshConfig>) -> FreshSimConfig {
        FreshSimConfig {
            nodes: 24,
            k: 4,
            keys: 10,
            ops: 240,
            write_every: 8,
            freshness,
            seed: 7,
            ..FreshSimConfig::default()
        }
    }

    #[test]
    fn ttl_only_baseline_reports_no_gossip_activity() {
        let rep = simulate_freshness(&small(None));
        assert_eq!(rep.gets, 240);
        assert!(rep.writes > 0);
        assert_eq!(rep.revalidations, 0);
        assert_eq!(rep.stale_drops, 0);
        assert_eq!(rep.warm_redirects, 0);
        assert!(rep.hit_ratio > 0.0, "the cache itself still works");
    }

    #[test]
    fn gossip_tightens_staleness_and_lifts_hit_ratio() {
        let baseline = simulate_freshness(&small(None));
        let gossip = simulate_freshness(&small(Some(FreshSimConfig::ablation_freshness())));
        assert!(
            gossip.stale_drops > 0,
            "digests must catch stale views on this write-heavy workload"
        );
        assert!(
            gossip.p99_staleness_us <= baseline.p99_staleness_us,
            "gossip must not widen the staleness window: {} vs {}",
            gossip.p99_staleness_us,
            baseline.p99_staleness_us
        );
        assert!(
            gossip.hit_ratio >= baseline.hit_ratio,
            "TTL extension must not lose hits: {:.3} vs {:.3}",
            gossip.hit_ratio,
            baseline.hit_ratio
        );
    }
}
