//! Engine-throughput harness: runs the churn+cache workload on the serial
//! and sharded engines and measures what the tentpole refactor is for —
//! **events/sec** and **peak RSS** at 10³–10⁴-node scale.
//!
//! The scenario is [`ChurnConfig`]-shaped (the A-churn/A7/A8 pipeline with
//! caching enabled), so one preset drives every engine comparison: the
//! simulated *results* per engine discipline are deterministic (and, for
//! `shards ≥ 2`, invariant in the shard count), while wall-clock and RSS
//! are measurements of the run, reported but never part of determinism
//! checks or CI regression gates.

use crate::churn::{simulate_churn, ChurnConfig, ChurnReport};
use crate::CacheSimConfig;

/// One measured engine run.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Engine shard count the run used (1 = serial discipline).
    pub shards: usize,
    /// Simulator events fired (deliveries + timers) — deterministic.
    pub events: u64,
    /// Wall-clock duration of the run, µs — a measurement, not a result.
    pub wall_us: u64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// Process peak RSS (`VmHWM`) after the run, bytes; 0 where
    /// unavailable (non-Linux). Monotone per process: the peak covers
    /// everything run so far, so measure the biggest scenario last or in
    /// its own process for a tight bound.
    pub peak_rss_bytes: u64,
    /// The full simulation report (deterministic per discipline).
    pub report: ChurnReport,
}

/// Runs `cfg` once and measures throughput around it.
pub fn measure_engine_run(cfg: &ChurnConfig) -> EngineRun {
    // dharma-lint: allow(D1): throughput/RSS measurement wrapped *around* a
    // deterministic run — the timing is reported, never fed back into it.
    let start = std::time::Instant::now();
    let report = simulate_churn(cfg);
    let wall_us = start.elapsed().as_micros().max(1) as u64;
    let events = report.events_processed;
    EngineRun {
        shards: cfg.shards.max(1),
        events,
        wall_us,
        events_per_sec: events as f64 / (wall_us as f64 / 1e6),
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        report,
    }
}

/// Process peak resident-set size in bytes (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The churn+cache scale scenario at a given size. `nodes`/`keys`/GET
/// volume scale together; churn keeps ~`horizon / mean_session` sessions
/// per node; caching is on (the A8-at-scale shape) and repair uses the
/// A-churn ablation cadence.
fn scenario(
    nodes: usize,
    keys: usize,
    horizon_us: u64,
    op_interval_us: u64,
    seed: u64,
) -> ChurnConfig {
    ChurnConfig {
        nodes,
        k: 20,
        keys,
        zipf_s: 1.2,
        top_n: 0,
        horizon_us,
        op_interval_us,
        mean_session_us: (horizon_us * 2).max(1),
        mean_downtime_us: (horizon_us / 10).max(1),
        session_shape: 1.0,
        repair: Some(ChurnConfig::ablation_repair()),
        graceful_fraction: 0.0,
        sample_interval_us: (horizon_us / 5).max(1),
        get_retries: 2,
        seed,
        cache: Some(CacheSimConfig::ablation_cache()),
        freshness: None,
        shards: 1,
        write_batch: 100,
    }
}

/// The full 10k-node scenario: ≥ 1M Zipf GETs under churn with caching
/// (`horizon / op_interval` = 300 s / 250 µs = 1.2M issued GETs).
pub fn scale_full(seed: u64) -> ChurnConfig {
    scenario(10_000, 2_000, 300_000_000, 250, seed)
}

/// The CI smoke scenario: 1k nodes, 30k GETs — the parallel path
/// exercised end-to-end on every PR inside a small wall budget.
pub fn scale_smoke(seed: u64) -> ChurnConfig {
    scenario(1_000, 400, 30_000_000, 1_000, seed)
}

/// The bench-artifact scenario: small enough for the CI bench job, big
/// enough that events/sec means something (256 nodes, 60k GETs).
pub fn scale_bench(seed: u64) -> ChurnConfig {
    scenario(256, 128, 60_000_000, 1_000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_run_measures_throughput() {
        let mut cfg = scenario(16, 8, 5_000_000, 100_000, 5);
        cfg.k = 6;
        let run = measure_engine_run(&cfg);
        assert!(run.events > 0);
        assert!(run.events_per_sec > 0.0);
        assert_eq!(run.events, run.report.events_processed);
        // Linux CI: VmHWM must parse.
        if cfg!(target_os = "linux") {
            assert!(run.peak_rss_bytes > 0);
        }
    }

    #[test]
    fn scale_presets_are_sane() {
        let full = scale_full(42);
        assert_eq!(full.nodes, 10_000);
        assert!(
            full.horizon_us / full.op_interval_us >= 1_000_000,
            ">=1M GETs"
        );
        let smoke = scale_smoke(42);
        assert_eq!(smoke.nodes, 1_000);
        assert!(smoke.horizon_us / smoke.op_interval_us >= 10_000);
    }
}
