//! The faceted-search convergence experiment (paper §V-C).
//!
//! From each of the 100 most popular tags, simulate: one *first-tag* search
//! (always pick the most similar candidate), one *last-tag* search (always
//! the least similar), and 100 *random* searches. The displayed tag set is
//! capped at the top 100 by similarity (index-side filtering); a search
//! stops when `|Tᵢ| ≤ 1` or `|Rᵢ| ≤ 10`. Table IV reports mean, standard
//! deviation and median of the path lengths; Figure 7 plots their CDFs.
//!
//! Runs are independent, so they are fanned out over `dharma-par`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dharma_dataset::Dataset;
use dharma_folksonomy::stats::{median, MeanStd};
use dharma_folksonomy::{FacetedSearch, Fg, SearchConfig, Strategy, TagId};
use dharma_par::ThreadPool;

/// Configuration of the search simulation.
#[derive(Clone, Debug)]
pub struct SearchSimConfig {
    /// Number of popular seed tags (paper: 100).
    pub seeds: usize,
    /// Random walks per seed (paper: 100).
    pub random_runs: usize,
    /// Faceted-search parameters (cap 100, stop at `|R| ≤ 10` / `|T| ≤ 1`).
    pub search: SearchConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchSimConfig {
    fn default() -> Self {
        SearchSimConfig {
            seeds: 100,
            random_runs: 100,
            search: SearchConfig::default(),
            seed: 0,
        }
    }
}

/// Statistics for one strategy (one column block of Table IV).
#[derive(Clone, Debug)]
pub struct StrategyStats {
    /// Which strategy.
    pub strategy: Strategy,
    /// Mean path length.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Median (the paper's μ½).
    pub median: f64,
    /// All observed path lengths (for the Figure 7 CDF).
    pub lengths: Vec<usize>,
}

impl StrategyStats {
    fn from_lengths(strategy: Strategy, lengths: Vec<usize>) -> Self {
        let mut acc = MeanStd::new();
        for &l in &lengths {
            acc.push(l as f64);
        }
        let mut as_f: Vec<f64> = lengths.iter().map(|&l| l as f64).collect();
        StrategyStats {
            strategy,
            mean: acc.mean(),
            std: acc.std(),
            median: median(&mut as_f),
            lengths,
        }
    }

    /// Cumulative distribution points `(length, P[X ≤ length])`.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        dharma_folksonomy::cdf_points(self.lengths.iter().map(|&l| l as u64).collect())
    }
}

/// The full report: one [`StrategyStats`] per strategy.
#[derive(Clone, Debug)]
pub struct SearchSimReport {
    /// Last-tag strategy results.
    pub last: StrategyStats,
    /// Random strategy results.
    pub random: StrategyStats,
    /// First-tag strategy results.
    pub first: StrategyStats,
}

impl SearchSimReport {
    /// Iterates strategies in the paper's column order (Last, Rand, First).
    pub fn iter(&self) -> impl Iterator<Item = &StrategyStats> {
        [&self.last, &self.random, &self.first].into_iter()
    }
}

/// Runs the §V-C experiment on the given graph pair.
///
/// `fg` may be the exact folksonomy graph or a replayed approximated one —
/// the paper runs both and compares (Table IV's two row blocks).
pub fn simulate_searches(
    pool: &ThreadPool,
    dataset: &Dataset,
    fg: &Fg,
    cfg: &SearchSimConfig,
) -> SearchSimReport {
    let seeds: Vec<TagId> = dataset.most_popular_tags(cfg.seeds);
    let index = FacetedSearch::new(&dataset.trg, fg);

    // Work items: (seed tag, strategy, run index) — all independent.
    let mut work: Vec<(TagId, Strategy, usize)> = Vec::new();
    for &s in &seeds {
        work.push((s, Strategy::First, 0));
        work.push((s, Strategy::Last, 0));
        for run in 0..cfg.random_runs {
            work.push((s, Strategy::Random, run));
        }
    }

    let search_cfg = cfg.search;
    let base_seed = cfg.seed;
    let chunk = dharma_par::chunk_size(work.len(), pool.threads(), 8);
    let lengths: Vec<(Strategy, usize)> =
        dharma_par::par_map(pool, &work, chunk, |&(t0, strat, run)| {
            // Independent, collision-free stream per (tag, strategy, run).
            let stream = base_seed
                ^ (u64::from(t0.0) << 20)
                ^ ((run as u64) << 2)
                ^ match strat {
                    Strategy::First => 0,
                    Strategy::Last => 1,
                    Strategy::Random => 2,
                };
            let mut rng = StdRng::seed_from_u64(stream);
            let out = index.run(t0, strat, &search_cfg, &mut rng);
            (strat, out.steps())
        });

    let collect = |want: Strategy| -> Vec<usize> {
        lengths
            .iter()
            .filter(|(s, _)| *s == want)
            .map(|&(_, l)| l)
            .collect()
    };

    SearchSimReport {
        last: StrategyStats::from_lengths(Strategy::Last, collect(Strategy::Last)),
        random: StrategyStats::from_lengths(Strategy::Random, collect(Strategy::Random)),
        first: StrategyStats::from_lengths(Strategy::First, collect(Strategy::First)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_dataset::{GeneratorConfig, Scale};

    fn setup() -> (Dataset, Fg) {
        let d = GeneratorConfig::lastfm_like(Scale::Tiny, 5).generate();
        let fg = Fg::derive_exact(&d.trg);
        (d, fg)
    }

    #[test]
    fn report_covers_all_strategies() {
        let (d, fg) = setup();
        let pool = ThreadPool::new(4);
        let cfg = SearchSimConfig {
            seeds: 20,
            random_runs: 10,
            seed: 1,
            ..SearchSimConfig::default()
        };
        let rep = simulate_searches(&pool, &d, &fg, &cfg);
        assert_eq!(rep.first.lengths.len(), 20);
        assert_eq!(rep.last.lengths.len(), 20);
        assert_eq!(rep.random.lengths.len(), 200);
        for s in rep.iter() {
            assert!(s.mean >= 1.0, "paths contain at least the seed");
            assert!(!s.lengths.is_empty());
        }
    }

    #[test]
    fn first_walks_are_longest_on_average() {
        // The paper's headline ordering: last ≤ random ≤ first.
        let (d, fg) = setup();
        let pool = ThreadPool::new(4);
        let cfg = SearchSimConfig {
            seeds: 30,
            random_runs: 20,
            seed: 2,
            ..SearchSimConfig::default()
        };
        let rep = simulate_searches(&pool, &d, &fg, &cfg);
        assert!(
            rep.first.mean >= rep.random.mean,
            "first {} vs random {}",
            rep.first.mean,
            rep.random.mean
        );
        assert!(
            rep.random.mean >= rep.last.mean,
            "random {} vs last {}",
            rep.random.mean,
            rep.last.mean
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (d, fg) = setup();
        let pool = ThreadPool::new(4);
        let cfg = SearchSimConfig {
            seeds: 10,
            random_runs: 5,
            seed: 3,
            ..SearchSimConfig::default()
        };
        let a = simulate_searches(&pool, &d, &fg, &cfg);
        let b = simulate_searches(&pool, &d, &fg, &cfg);
        assert_eq!(a.random.lengths, b.random.lengths);
        assert_eq!(a.first.lengths, b.first.lengths);
    }

    #[test]
    fn cdf_reaches_one() {
        let (d, fg) = setup();
        let pool = ThreadPool::new(2);
        let cfg = SearchSimConfig {
            seeds: 5,
            random_runs: 3,
            seed: 4,
            ..SearchSimConfig::default()
        };
        let rep = simulate_searches(&pool, &d, &fg, &cfg);
        let cdf = rep.random.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
