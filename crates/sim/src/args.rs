//! Minimal command-line parsing shared by the experiment binaries.
//!
//! All binaries accept:
//!
//! * `--scale tiny|small|medium|paper` — dataset preset (default `small`);
//! * `--seed <u64>` — master seed (default 42);
//! * `--out <dir>` — CSV output directory (default `results`);
//! * `--threads <n>` — worker threads (default: available parallelism).

use dharma_dataset::Scale;

/// Parsed experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV series.
    pub out: String,
    /// Worker thread count (0 = auto).
    pub threads: usize,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: Scale::Small,
            seed: 42,
            out: "results".into(),
            threads: 0,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> ExpArgs {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale tiny|small|medium|paper] [--seed N] [--out DIR] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit iterator (testable).
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale '{v}'"))?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--out" => out.out = value("--out")?,
                "--threads" => {
                    let v = value("--threads")?;
                    out.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(out)
    }

    /// Builds the worker pool this run should use.
    pub fn pool(&self) -> dharma_par::ThreadPool {
        if self.threads == 0 {
            dharma_par::ThreadPool::with_default_threads()
        } else {
            dharma_par::ThreadPool::new(self.threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::try_parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 42);
        assert_eq!(a.out, "results");
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--threads",
            "2",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, "/tmp/x");
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "gigantic"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }
}
