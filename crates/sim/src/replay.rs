//! The approximated-graph replay protocol (paper §V-B).
//!
//! Starting from a fully disconnected graph containing every tag and
//! resource of a *reference* TRG, the simulation repeatedly performs one
//! tagging operation:
//!
//! * resource `r` is drawn with probability proportional to its popularity
//!   `|Tags(r)|` in the reference (restricted to resources that still have
//!   unplayed annotation instances — a Fenwick tree makes that `O(log R)`);
//! * tag `t` is drawn within `Tags(r)` proportionally to the reference
//!   weight `u(t, r)` (again among tags with instances left);
//! * the tagging operation updates the TRG and — under the configured
//!   [`ApproxPolicy`] — the folksonomy graph.
//!
//! The run ends when every `u(t, r)` multiplicity of the reference has been
//! replayed, so the final TRG equals the reference **exactly** (asserted in
//! tests); only the FG differs, which is what Figures 6/8 and Table III
//! measure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dharma_dataset::Fenwick;
use dharma_folksonomy::{ApproxPolicy, Folksonomy, ResId, TagId, Trg};

/// How replay events are interleaved across resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EventOrder {
    /// The paper's protocol: popularity-biased resource choice.
    #[default]
    PopularityBiased,
    /// Uniform choice among resources with remaining instances (ablation).
    Uniform,
}

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// FG maintenance policy (the paper replays with Approximations A + B).
    pub policy: ApproxPolicy,
    /// Event interleaving.
    pub order: EventOrder,
    /// RNG seed.
    pub seed: u64,
}

impl ReplayConfig {
    /// The paper's configuration at connection parameter `k`.
    pub fn paper(k: usize, seed: u64) -> Self {
        ReplayConfig {
            policy: ApproxPolicy::paper(k),
            order: EventOrder::PopularityBiased,
            seed,
        }
    }
}

/// Replays `reference` under `cfg`, returning the evolved folksonomy
/// (its TRG is equal to the reference when the run completes).
pub fn replay(reference: &Trg, cfg: &ReplayConfig) -> Folksonomy {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let num_res = reference.num_resources();
    let num_tags = reference.num_tags();

    // Per-resource playlists: (tag, remaining instances), plus the static
    // per-tag weights for the within-resource draw.
    let mut playlists: Vec<Vec<(TagId, u32, u32)>> = Vec::with_capacity(num_res);
    // Fenwick over resources. Weight = |Tags(r)| (static popularity) while
    // the resource has instances left, 0 afterwards.
    let mut popularity = vec![0u64; num_res];
    let mut remaining_mass: Vec<u64> = vec![0; num_res];
    for r in 0..num_res {
        let rid = ResId(r as u32);
        let list: Vec<(TagId, u32, u32)> = reference.tags_of(rid).map(|(t, u)| (t, u, u)).collect();
        let degree = list.len() as u64;
        let mass: u64 = list.iter().map(|&(_, u, _)| u64::from(u)).sum();
        remaining_mass[r] = mass;
        popularity[r] = match cfg.order {
            EventOrder::PopularityBiased => degree,
            EventOrder::Uniform => u64::from(mass > 0),
        };
        playlists.push(list);
    }
    let mut fenwick = Fenwick::from_weights(&popularity);

    let mut model = Folksonomy::with_capacity(cfg.policy, num_tags, num_res);
    let total: u64 = remaining_mass.iter().sum();

    for _ in 0..total {
        // Draw the resource among those still active, ∝ static popularity.
        let r = fenwick.sample(&mut rng);
        let playlist = &mut playlists[r];

        // Draw the tag within the resource ∝ static u(t, r) among tags with
        // instances left (linear scan: |Tags(r)| is small on average and the
        // hot, high-degree resources amortize via the early-exit below).
        let live_weight: u64 = playlist
            .iter()
            .filter(|&&(_, _, rem)| rem > 0)
            .map(|&(_, u, _)| u64::from(u))
            .sum();
        debug_assert!(live_weight > 0);
        let mut pick = rng.gen_range(0..live_weight);
        let mut chosen = usize::MAX;
        for (i, &(_, u, rem)) in playlist.iter().enumerate() {
            if rem == 0 {
                continue;
            }
            let w = u64::from(u);
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let (tag, _, rem) = &mut playlist[chosen];
        *rem -= 1;
        let tag = *tag;

        model.tag(ResId(r as u32), tag, &mut rng);

        remaining_mass[r] -= 1;
        if remaining_mass[r] == 0 {
            // Resource exhausted: remove it from the draw.
            let w = fenwick.weight(r);
            fenwick.sub(r, w);
        }
    }

    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_dataset::{GeneratorConfig, Scale};
    use dharma_folksonomy::Fg;

    fn tiny_reference() -> Trg {
        GeneratorConfig::lastfm_like(Scale::Tiny, 5).generate().trg
    }

    #[test]
    fn replay_reconstructs_the_reference_trg() {
        let reference = tiny_reference();
        let model = replay(&reference, &ReplayConfig::paper(1, 9));
        assert!(
            model.trg().same_edges(&reference),
            "TRG must converge to the reference exactly"
        );
    }

    #[test]
    fn exact_replay_matches_derived_fg() {
        let reference = tiny_reference();
        let cfg = ReplayConfig {
            policy: ApproxPolicy::EXACT,
            order: EventOrder::PopularityBiased,
            seed: 10,
        };
        let model = replay(&reference, &cfg);
        let derived = Fg::derive_exact(&reference);
        assert_eq!(model.fg().num_arcs(), derived.num_arcs());
        // Spot-check all arcs of the busiest tags.
        for (t1, t2, w) in model.fg().arcs() {
            assert_eq!(derived.sim(t1, t2), w, "arc {t1:?}->{t2:?}");
        }
    }

    #[test]
    fn approximated_replay_loses_only_weight() {
        let reference = tiny_reference();
        let approx = replay(&reference, &ReplayConfig::paper(1, 11));
        let exact = Fg::derive_exact(&reference);
        let mut lost_arcs = 0usize;
        for (t1, t2, w) in exact.arcs() {
            let wa = approx.fg().sim(t1, t2);
            assert!(wa <= w, "approx weight can never exceed exact");
            if wa == 0 {
                lost_arcs += 1;
            }
        }
        assert!(lost_arcs > 0, "k = 1 must drop some arcs at this scale");
        // And no arc exists in approx that is absent from exact.
        for (t1, t2, _) in approx.fg().arcs() {
            assert!(exact.sim(t1, t2) > 0);
        }
    }

    #[test]
    fn replay_is_seed_deterministic() {
        let reference = tiny_reference();
        let a = replay(&reference, &ReplayConfig::paper(2, 17));
        let b = replay(&reference, &ReplayConfig::paper(2, 17));
        assert_eq!(a.fg().num_arcs(), b.fg().num_arcs());
        for (t1, t2, w) in a.fg().arcs() {
            assert_eq!(b.fg().sim(t1, t2), w);
        }
        let c = replay(&reference, &ReplayConfig::paper(2, 18));
        let differs = a.fg().arcs().any(|(t1, t2, w)| c.fg().sim(t1, t2) != w);
        assert!(differs, "different seeds should explore different subsets");
    }

    #[test]
    fn uniform_order_also_reconstructs_trg() {
        let reference = tiny_reference();
        let cfg = ReplayConfig {
            policy: ApproxPolicy::paper(1),
            order: EventOrder::Uniform,
            seed: 3,
        };
        let model = replay(&reference, &cfg);
        assert!(model.trg().same_edges(&reference));
    }

    #[test]
    fn larger_k_keeps_more_arcs() {
        let reference = tiny_reference();
        let k1 = replay(&reference, &ReplayConfig::paper(1, 21));
        let k100 = replay(&reference, &ReplayConfig::paper(100, 21));
        assert!(
            k100.fg().num_arcs() >= k1.fg().num_arcs(),
            "recall grows with k: {} vs {}",
            k100.fg().num_arcs(),
            k1.fg().num_arcs()
        );
    }
}
