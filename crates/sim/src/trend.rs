//! Trend-emergence dynamics — the paper's stated future work (§VI):
//! *"we are planning to study if our approximated model hampers the
//! emergence of new tagging trends"*.
//!
//! Protocol: replay a warmup fraction of the reference history, then start
//! injecting a **brand-new tag** applied by a stream of users to a set of
//! popular resources, interleaved with the remaining baseline traffic. A
//! trend has *emerged* when the new tag becomes visible to searchers — i.e.
//! when it climbs into the **top-100 entries of the `t̂` block of a popular
//! co-occurring hub tag** (that is the set a navigating user is shown,
//! §V-A/§V-C).
//!
//! The race is structural: under Approximation A, each trend event bumps the
//! hub's arc `(hub, T*)` only with probability ≈ `k / |Tags(r)|`, so low `k`
//! slows the weight growth that must overtake the hub's established
//! neighbors. The experiment measures the *visibility delay* — how many
//! trend events it takes before the new tag surfaces — across policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dharma_dataset::Fenwick;
use dharma_folksonomy::{ApproxPolicy, Folksonomy, ResId, TagId, Trg};

/// Configuration of one trend-emergence run.
#[derive(Clone, Debug)]
pub struct TrendConfig {
    /// Fraction of the baseline history replayed before the trend starts.
    pub warmup_fraction: f64,
    /// Total trend annotation events to inject.
    pub trend_events: usize,
    /// Probability that a post-warmup step is a trend event (the rest is
    /// baseline traffic), while trend budget remains.
    pub trend_rate: f64,
    /// The trend attaches to this many of the most popular resources.
    pub targets: usize,
    /// Tag-maintenance policy under test.
    pub policy: ApproxPolicy,
    /// Display cap defining "visibility" (paper: 100).
    pub visibility_top_n: usize,
    /// Sample the trajectory every this many trend events.
    pub sample_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            warmup_fraction: 0.5,
            trend_events: 2_000,
            trend_rate: 0.25,
            targets: 20,
            policy: ApproxPolicy::paper(1),
            visibility_top_n: 100,
            sample_every: 50,
            seed: 0,
        }
    }
}

/// One point of the emergence trajectory.
#[derive(Clone, Copy, Debug)]
pub struct TrendSample {
    /// Trend events injected so far.
    pub trend_events: usize,
    /// `|N_FG(T*)|` — out-degree of the trend tag.
    pub out_degree: usize,
    /// Weight of the hub → trend arc (`sim(hub, T*)`).
    pub hub_arc_weight: u64,
    /// Rank of `T*` among the hub's out-arcs (0 = heaviest), if connected.
    pub hub_rank: Option<usize>,
    /// True when `T*` is inside the hub's top-`visibility_top_n` display.
    pub visible: bool,
}

/// The result of a run: the trajectory plus the headline number.
#[derive(Clone, Debug)]
pub struct TrendReport {
    /// Sampled trajectory, in trend-event order.
    pub samples: Vec<TrendSample>,
    /// Trend events needed until first visibility (`None` = never).
    pub events_to_visibility: Option<usize>,
    /// The hub tag used as the visibility reference.
    pub hub: TagId,
}

/// Runs the trend-emergence experiment on `reference` under `cfg`.
pub fn run_trend(reference: &Trg, cfg: &TrendConfig) -> TrendReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let num_res = reference.num_resources();
    let num_tags = reference.num_tags();
    let trend_tag = TagId(num_tags as u32);

    // Baseline playlists, as in the replay engine.
    let mut playlists: Vec<Vec<(TagId, u32, u32)>> = Vec::with_capacity(num_res);
    let mut popularity = vec![0u64; num_res];
    let mut remaining_mass = vec![0u64; num_res];
    for r in 0..num_res {
        let rid = ResId(r as u32);
        let list: Vec<(TagId, u32, u32)> = reference.tags_of(rid).map(|(t, u)| (t, u, u)).collect();
        popularity[r] = list.len() as u64;
        remaining_mass[r] = list.iter().map(|&(_, u, _)| u64::from(u)).sum();
        playlists.push(list);
    }
    let mut fenwick = Fenwick::from_weights(&popularity);
    let total_baseline: u64 = remaining_mass.iter().sum();

    // Trend targets: the most popular resources (by |Tags(r)|).
    let mut by_degree: Vec<(usize, u32)> = (0..num_res as u32)
        .map(|r| (reference.tag_degree(ResId(r)), r))
        .collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let targets: Vec<ResId> = by_degree
        .iter()
        .take(cfg.targets.max(1))
        .map(|&(_, r)| ResId(r))
        .collect();

    // The visibility hub: the most popular tag co-occurring on the targets.
    let hub = targets
        .iter()
        .flat_map(|&r| reference.tags_of(r).map(|(t, _)| t))
        .max_by_key(|&t| reference.res_degree(t))
        .expect("targets carry tags");

    let mut model = Folksonomy::with_capacity(cfg.policy, num_tags + 1, num_res);

    // Phase 1 — warmup: replay the first fraction of baseline events.
    let warmup_events = (total_baseline as f64 * cfg.warmup_fraction) as u64;
    let mut baseline_done = 0u64;
    let play_baseline = |model: &mut Folksonomy,
                         fenwick: &mut Fenwick,
                         playlists: &mut Vec<Vec<(TagId, u32, u32)>>,
                         remaining_mass: &mut Vec<u64>,
                         rng: &mut StdRng| {
        let r = fenwick.sample(rng);
        let playlist = &mut playlists[r];
        let live: u64 = playlist
            .iter()
            .filter(|&&(_, _, rem)| rem > 0)
            .map(|&(_, u, _)| u64::from(u))
            .sum();
        let mut pick = rng.gen_range(0..live);
        let mut chosen = usize::MAX;
        for (i, &(_, u, rem)) in playlist.iter().enumerate() {
            if rem == 0 {
                continue;
            }
            let w = u64::from(u);
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        playlist[chosen].2 -= 1;
        let tag = playlist[chosen].0;
        model.tag(ResId(r as u32), tag, rng);
        remaining_mass[r] -= 1;
        if remaining_mass[r] == 0 {
            let w = fenwick.weight(r);
            fenwick.sub(r, w);
        }
    };
    for _ in 0..warmup_events {
        play_baseline(
            &mut model,
            &mut fenwick,
            &mut playlists,
            &mut remaining_mass,
            &mut rng,
        );
        baseline_done += 1;
    }

    // Phase 2 — injection: trend events interleaved with baseline traffic.
    let mut samples = Vec::new();
    let mut events_to_visibility = None;
    let mut injected = 0usize;
    let observe = |model: &Folksonomy, injected: usize| -> TrendSample {
        let weight = model.fg().sim(hub, trend_tag);
        let rank = if weight > 0 {
            Some(
                model
                    .fg()
                    .neighbors(hub)
                    .filter(|&(n, w)| {
                        w > weight || (w == weight && n.tie_key() < trend_tag.tie_key())
                    })
                    .count(),
            )
        } else {
            None
        };
        let visible = rank.is_some_and(|r| r < cfg.visibility_top_n);
        TrendSample {
            trend_events: injected,
            out_degree: model.fg().out_degree(trend_tag),
            hub_arc_weight: weight,
            hub_rank: rank,
            visible,
        }
    };

    while injected < cfg.trend_events {
        let baseline_left = baseline_done < total_baseline;
        let do_trend = !baseline_left || rng.gen::<f64>() < cfg.trend_rate;
        if do_trend {
            let &target = &targets[rng.gen_range(0..targets.len())];
            model.tag(target, trend_tag, &mut rng);
            injected += 1;
            if injected.is_multiple_of(cfg.sample_every) || injected == cfg.trend_events {
                let sample = observe(&model, injected);
                if sample.visible && events_to_visibility.is_none() {
                    events_to_visibility = Some(injected);
                }
                samples.push(sample);
            }
        } else {
            play_baseline(
                &mut model,
                &mut fenwick,
                &mut playlists,
                &mut remaining_mass,
                &mut rng,
            );
            baseline_done += 1;
        }
    }

    TrendReport {
        samples,
        events_to_visibility,
        hub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_dataset::{GeneratorConfig, Scale};

    fn reference() -> Trg {
        GeneratorConfig::lastfm_like(Scale::Tiny, 5).generate().trg
    }

    #[test]
    fn exact_trend_becomes_visible() {
        let trg = reference();
        let cfg = TrendConfig {
            policy: ApproxPolicy::EXACT,
            trend_events: 1_500,
            seed: 1,
            ..TrendConfig::default()
        };
        let report = run_trend(&trg, &cfg);
        assert!(
            report.events_to_visibility.is_some(),
            "an exact model must surface a sustained trend"
        );
        // Trajectory is monotone in arc weight.
        for w in report.samples.windows(2) {
            assert!(w[1].hub_arc_weight >= w[0].hub_arc_weight);
        }
    }

    #[test]
    fn approximation_delays_but_does_not_block_emergence() {
        let trg = reference();
        let run = |policy: ApproxPolicy| {
            let cfg = TrendConfig {
                policy,
                trend_events: 3_000,
                seed: 2,
                ..TrendConfig::default()
            };
            run_trend(&trg, &cfg)
        };
        let exact = run(ApproxPolicy::EXACT);
        let k1 = run(ApproxPolicy::paper(1));
        let e_exact = exact.events_to_visibility.expect("exact emerges");
        match k1.events_to_visibility {
            Some(e_k1) => assert!(e_k1 >= e_exact, "k=1 cannot beat exact: {e_k1} < {e_exact}"),
            None => {
                // Delayed beyond the horizon is acceptable at tiny scale,
                // but the arc must at least exist and be growing.
                let last = k1.samples.last().unwrap();
                assert!(last.hub_arc_weight > 0, "trend arc never formed");
            }
        }
    }

    #[test]
    fn trajectories_are_seed_deterministic() {
        let trg = reference();
        let cfg = TrendConfig {
            seed: 3,
            trend_events: 500,
            ..TrendConfig::default()
        };
        let a = run_trend(&trg, &cfg);
        let b = run_trend(&trg, &cfg);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.hub_arc_weight, y.hub_arc_weight);
            assert_eq!(x.out_degree, y.out_degree);
        }
        assert_eq!(a.hub, b.hub);
    }
}
