//! Simulated-overlay construction shared by the DHT-level experiments.

use dharma_cache::{CacheConfig, FreshConfig, PopularityConfig};
use dharma_kademlia::{KadConfig, KademliaNode, MaintConfig};
use dharma_net::{SimConfig, SimNet};
use dharma_types::Id160;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Overlay parameters for experiments.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Kademlia bucket size / replication factor.
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Transport MTU in bytes.
    pub mtu: usize,
    /// Mean link latency bounds (µs).
    pub latency_us: (u64, u64),
    /// Datagram loss probability.
    pub drop_rate: f64,
    /// Seed.
    pub seed: u64,
    /// Hot-block caching on every node (`None` = the paper's plain overlay).
    pub cache: Option<CacheConfig>,
    /// Popularity-driven adaptive replication on every node.
    pub replication: Option<PopularityConfig>,
    /// Churn maintenance (probes / handoff / repair) on every node.
    /// `None` keeps the static-experiment overlay byte-identical to PR 2.
    pub maintenance: Option<MaintConfig>,
    /// Version gossip & cache-aware lookup routing on every node
    /// (`dharma-fresh`); `None` keeps the TTL-only cache protocol.
    pub freshness: Option<FreshConfig>,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            nodes: 64,
            k: 20,
            alpha: 3,
            mtu: 64 * 1024,
            latency_us: (1_000, 10_000),
            drop_rate: 0.0,
            seed: 0,
            cache: None,
            replication: None,
            maintenance: None,
            freshness: None,
        }
    }
}

impl OverlayConfig {
    /// The per-node protocol configuration this overlay runs, recording
    /// into `counters`. Exposed so drivers that spawn *additional* nodes
    /// mid-run (e.g. the freshness turnover scenario) give them exactly
    /// the config the original fleet got.
    pub fn kad_config(&self, counters: dharma_net::NetCounters) -> KadConfig {
        KadConfig {
            k: self.k,
            alpha: self.alpha,
            rpc_timeout_us: 300_000,
            reply_budget: self.mtu.saturating_sub(200).max(256),
            cache: self.cache.clone(),
            replication: self.replication.clone(),
            maintenance: self.maintenance.clone(),
            freshness: self.freshness.clone(),
            counters,
            ..KadConfig::default()
        }
    }
}

/// Builds and bootstraps an overlay: node 0 is the rendezvous; every other
/// node seeds it and performs the standard join lookup.
pub fn build_overlay(cfg: &OverlayConfig) -> SimNet<KademliaNode> {
    let mut net = SimNet::new(SimConfig {
        latency_min_us: cfg.latency_us.0,
        latency_max_us: cfg.latency_us.1,
        drop_rate: cfg.drop_rate,
        mtu: cfg.mtu,
        seed: cfg.seed,
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1A2);
    let kad = cfg.kad_config(net.counters());
    let mut rendezvous = None;
    for i in 0..cfg.nodes {
        let id = Id160::random(&mut rng);
        let addr = net.add_node(KademliaNode::new(id, i as u32, kad.clone()));
        match &rendezvous {
            None => rendezvous = Some(net.node(addr).contact().clone()),
            Some(seed_contact) => {
                let seed_contact = seed_contact.clone();
                net.node_mut(addr).add_seed(seed_contact);
                net.with_node(addr, |node, ctx| {
                    node.bootstrap(ctx);
                });
            }
        }
    }
    // Maintenance timers re-arm forever, so a maintained overlay must
    // bootstrap time-bounded; a static one drains the queue as before.
    if cfg.maintenance.is_some() {
        net.run_until(net.now_us() + 2_000_000);
    } else {
        net.run_until_idle(u64::MAX);
    }
    net.take_completions();
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_bootstraps() {
        let net = build_overlay(&OverlayConfig {
            nodes: 24,
            seed: 3,
            ..OverlayConfig::default()
        });
        for i in 0..24u32 {
            assert!(net.node(i).routing().len() >= 3, "node {i} underpopulated");
        }
    }
}
