//! Simulated-overlay construction shared by the DHT-level experiments.

use dharma_cache::{CacheConfig, FreshConfig, PopularityConfig};
use dharma_kademlia::{KadConfig, KademliaNode, LatencyConfig, MaintConfig};
use dharma_net::{SimConfig, SimNet, TopologyConfig};
use dharma_types::Id160;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Overlay parameters for experiments.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Kademlia bucket size / replication factor.
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Transport MTU in bytes.
    pub mtu: usize,
    /// Mean link latency bounds (µs).
    pub latency_us: (u64, u64),
    /// Datagram loss probability.
    pub drop_rate: f64,
    /// Seed.
    pub seed: u64,
    /// Hot-block caching on every node (`None` = the paper's plain overlay).
    pub cache: Option<CacheConfig>,
    /// Popularity-driven adaptive replication on every node.
    pub replication: Option<PopularityConfig>,
    /// Churn maintenance (probes / handoff / repair) on every node.
    /// `None` keeps the static-experiment overlay byte-identical to PR 2.
    pub maintenance: Option<MaintConfig>,
    /// Version gossip & cache-aware lookup routing on every node
    /// (`dharma-fresh`); `None` keeps the TTL-only cache protocol.
    pub freshness: Option<FreshConfig>,
    /// Event-engine shards (1 = the serial engine; ≥2 enables the
    /// window-barrier sharded engine and its parallel executor).
    pub shards: usize,
    /// Geo-clustered per-link delay/loss model. `None` keeps the classic
    /// global-uniform `latency_us`/`drop_rate` link discipline and stays
    /// byte-identical to prior runs; `Some` switches the simulator to
    /// per-link base delays + jitter and ignores `latency_us.1`/`drop_rate`.
    pub topology: Option<TopologyConfig>,
    /// Latency-aware protocol behaviour on every node (RTT estimation,
    /// proximity neighbor selection, shortlist bias, adaptive α).
    /// `None` keeps the latency-oblivious protocol of prior PRs.
    pub latency: Option<LatencyConfig>,
    /// Join-batch size for bootstrap. `0` keeps the legacy single-drain
    /// bootstrap (byte-identical to prior runs). At large N set this to a
    /// few hundred: joins are admitted in batches and each batch settles
    /// under a bounded event budget, so bootstrap work stays O(n·log n)
    /// instead of piling every join lookup into one unbounded drain.
    pub bootstrap_batch: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            nodes: 64,
            k: 20,
            alpha: 3,
            mtu: 64 * 1024,
            latency_us: (1_000, 10_000),
            drop_rate: 0.0,
            seed: 0,
            cache: None,
            replication: None,
            maintenance: None,
            freshness: None,
            shards: 1,
            topology: None,
            latency: None,
            bootstrap_batch: 0,
        }
    }
}

impl OverlayConfig {
    /// The per-node protocol configuration this overlay runs, recording
    /// into `counters`. Exposed so drivers that spawn *additional* nodes
    /// mid-run (e.g. the freshness turnover scenario) give them exactly
    /// the config the original fleet got.
    pub fn kad_config(&self, counters: dharma_net::NetCounters) -> KadConfig {
        KadConfig {
            k: self.k,
            alpha: self.alpha,
            rpc_timeout_us: 300_000,
            reply_budget: self.mtu.saturating_sub(200).max(256),
            cache: self.cache.clone(),
            replication: self.replication.clone(),
            maintenance: self.maintenance.clone(),
            freshness: self.freshness.clone(),
            latency: self.latency.clone(),
            counters,
            ..KadConfig::default()
        }
    }
}

/// Per-join event allowance in batched bootstrap: generous headroom over a
/// join lookup's worst case (α walkers × O(log n) hops × k-wide replies).
const JOIN_EVENT_BUDGET: u64 = 4_096;

/// Builds and bootstraps an overlay: node 0 is the rendezvous; every other
/// node seeds it and performs the standard join lookup.
///
/// With `bootstrap_batch == 0` every join is admitted up front and the
/// whole queue drains once — the historical path, kept byte-identical.
/// With `bootstrap_batch > 0` joins are admitted in batches and each batch
/// settles under a bounded event budget before the next is admitted, so no
/// single drain ever holds the full O(n) join backlog; afterwards every
/// node's routing table is asserted populated.
pub fn build_overlay(cfg: &OverlayConfig) -> SimNet<KademliaNode> {
    let mut net = SimNet::new(SimConfig {
        // With a topology the min delay is the engine lookahead; the
        // global-uniform bounds are ignored by the per-link discipline.
        latency_min_us: cfg
            .topology
            .as_ref()
            .map(|t| t.min_delay_us())
            .unwrap_or(cfg.latency_us.0),
        latency_max_us: cfg.latency_us.1,
        drop_rate: cfg.drop_rate,
        mtu: cfg.mtu,
        seed: cfg.seed,
        shards: cfg.shards.max(1),
        topology: cfg.topology.clone(),
    });
    net.enable_parallel();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1A2);
    let kad = cfg.kad_config(net.counters());
    let mut rendezvous = None;
    let mut since_drain = 0u64;
    for i in 0..cfg.nodes {
        let id = Id160::random(&mut rng);
        let addr = net.add_node(KademliaNode::new(id, i as u32, kad.clone()));
        match &rendezvous {
            None => rendezvous = Some(net.node(addr).contact().clone()),
            Some(seed_contact) => {
                let seed_contact = seed_contact.clone();
                net.node_mut(addr).add_seed(seed_contact);
                net.with_node(addr, |node, ctx| {
                    node.bootstrap(ctx);
                });
                since_drain += 1;
            }
        }
        if cfg.bootstrap_batch > 0 && since_drain >= cfg.bootstrap_batch as u64 {
            net.run_until_idle(since_drain * JOIN_EVENT_BUDGET);
            since_drain = 0;
        }
    }
    // Maintenance timers re-arm forever, so a maintained overlay must
    // bootstrap time-bounded; a static one drains the queue as before.
    if cfg.maintenance.is_some() {
        net.run_until(net.now_us() + 2_000_000);
    } else if cfg.bootstrap_batch == 0 {
        net.run_until_idle(u64::MAX);
    } else {
        net.run_until_idle(since_drain.max(1) * JOIN_EVENT_BUDGET);
    }
    if cfg.bootstrap_batch > 0 {
        assert_bootstrapped(&net, cfg);
    }
    net.take_completions();
    net
}

/// Batched-bootstrap postcondition: joiners hold at least their seed and —
/// on a loss-free network — the rendezvous has heard back from the fleet.
fn assert_bootstrapped(net: &SimNet<KademliaNode>, cfg: &OverlayConfig) {
    let lossless = cfg.drop_rate == 0.0;
    for addr in 0..cfg.nodes as u32 {
        // A joiner always holds its seed; under loss the rendezvous has no
        // such guarantee, so it is only checked on a loss-free network.
        let floor = if lossless {
            cfg.nodes.saturating_sub(1).min(3)
        } else if addr == 0 {
            0
        } else {
            1
        };
        let have = net.node(addr).routing().len();
        assert!(
            have >= floor,
            "bootstrap left node {addr} with {have} contacts (< {floor})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_bootstraps() {
        let net = build_overlay(&OverlayConfig {
            nodes: 24,
            seed: 3,
            ..OverlayConfig::default()
        });
        for i in 0..24u32 {
            assert!(net.node(i).routing().len() >= 3, "node {i} underpopulated");
        }
    }

    #[test]
    fn batched_bootstrap_populates_routing_tables() {
        // Batched admission must leave the overlay as connected as the
        // single-drain path (assert_bootstrapped runs inside the builder).
        let net = build_overlay(&OverlayConfig {
            nodes: 48,
            seed: 7,
            bootstrap_batch: 8,
            ..OverlayConfig::default()
        });
        for i in 0..48u32 {
            assert!(net.node(i).routing().len() >= 3, "node {i} underpopulated");
        }
    }

    #[test]
    fn batched_bootstrap_on_sharded_engine() {
        // The sharded engine + batched joins end-to-end: the overlay forms
        // and stays functional with cross-shard join traffic.
        let net = build_overlay(&OverlayConfig {
            nodes: 32,
            seed: 11,
            shards: 4,
            bootstrap_batch: 8,
            ..OverlayConfig::default()
        });
        assert_eq!(net.shard_count(), 4);
        for i in 0..32u32 {
            assert!(net.node(i).routing().len() >= 3, "node {i} underpopulated");
        }
    }
}
