//! `BENCH_ci.json` trend gate: compares two benchmark artifacts and flags
//! quality regressions beyond a tolerance band.
//!
//! The artifact is the hand-rolled two-level JSON `bench_ci` emits
//! (`dharma-bench-ci/1`–`5` schema; v5 adds the push-enabled freshness
//! arm: `freshness.push_hit_ratio`, `freshness.push_p99_staleness_us`,
//! `freshness.push_msgs_per_get`, all gated by the substring rules
//! below). The parser here is deliberately minimal — section-aware line
//! scanning, no serde — because the format is machine-written by this
//! repo with one `"key": value` pair per line.
//!
//! Only *quality* metrics are gated, direction-aware:
//!
//! * higher-is-better: hit ratios, lookup success, max-load ratio,
//!   availability — regression when `new < old × (1 − tolerance)`;
//! * lower-is-better: staleness, hops, per-GET message costs, lost
//!   records, GET completion-time percentiles (`p50_us`/`p95_us`, virtual
//!   time, so deterministic) — regression when `new > old × (1 + tolerance)`
//!   (and any increase from a zero baseline).
//!
//! Everything else — seeds, raw event counts, events/sec, wall time, RSS,
//! the schema-v4 `udp` wall measurements (`dgrams_per_sec_core`,
//! `batching_speedup`, `p50_wall_us`/`p99_wall_us`, `syscall_cost_ns`) —
//! is informational: wall-clock metrics are nondeterministic across
//! runners, and raw counts move legitimately whenever a scenario is
//! retuned, so neither belongs in a pass/fail gate. `udp.lookup_success`
//! is the exception that proves the rule: loopback is lossless, so the
//! real-socket swarm finding its records is a quality invariant, not a
//! speed measurement.

use dharma_types::FxHashMap;

/// Gate tolerance: a metric may move 15% in the losing direction before
/// the comparison fails (the ROADMAP's trend-gate band).
pub const TOLERANCE: f64 = 0.15;

/// Flat metric view of one artifact: `"section.key" → value`.
pub fn parse_metrics(json: &str) -> FxHashMap<String, f64> {
    let mut out = FxHashMap::default();
    let mut section: Vec<String> = Vec::new();
    for raw in json.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.ends_with('}') && !section.is_empty() && !line.contains(':') {
            section.pop();
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if value == "{" {
            section.push(key.to_string());
            continue;
        }
        if let Ok(num) = value.parse::<f64>() {
            let path = if section.is_empty() {
                key.to_string()
            } else {
                format!("{}.{key}", section.join("."))
            };
            out.insert(path, num);
        }
    }
    out
}

/// Whether a metric path is gated, and in which direction. `None` =
/// informational only.
fn direction(path: &str) -> Option<bool> {
    // true = higher is better, false = lower is better.
    let higher = [
        "hit_ratio",
        "lookup_success",
        "max_load_ratio",
        "availability",
    ];
    let lower = [
        "staleness",
        "hops",
        "per_get",
        "lost",
        "messages",
        "p50_us",
        "p95_us",
    ];
    if higher.iter().any(|m| path.contains(m)) {
        return Some(true);
    }
    if lower.iter().any(|m| path.contains(m)) {
        return Some(false);
    }
    None
}

/// Compares two artifacts; returns one line per regression (empty = pass).
/// Metrics present in only one artifact are skipped — schema growth must
/// not fail the gate against an older baseline.
pub fn compare(old_json: &str, new_json: &str) -> Vec<String> {
    let old = parse_metrics(old_json);
    let new = parse_metrics(new_json);
    let mut failures = Vec::new();
    let mut paths: Vec<&String> = old.keys().filter(|p| new.contains_key(*p)).collect();
    paths.sort();
    for path in paths {
        let Some(higher_better) = direction(path) else {
            continue;
        };
        let (o, n) = (old[path], new[path.as_str()]);
        let regressed = if higher_better {
            n < o * (1.0 - TOLERANCE)
        } else if o == 0.0 {
            n > 0.0
        } else {
            n > o * (1.0 + TOLERANCE)
        };
        if regressed {
            failures.push(format!(
                "{path}: {o} -> {n} ({} by more than {:.0}%)",
                if higher_better { "dropped" } else { "grew" },
                TOLERANCE * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
  "schema": "dharma-bench-ci/1",
  "seed": 42,
  "cache": {
    "hit_ratio": 0.800000,
    "max_load_ratio": 3.0000,
    "messages_per_get": 4.0000
  },
  "maintenance": {
    "lookup_success": 1.000000,
    "lost_records": 0,
    "maint_msgs_per_get": 10.0000
  },
  "freshness": {
    "gossip_p99_staleness_us": 100000,
    "gossip_hops_per_get": 2.0000,
    "push_hit_ratio": 0.400000,
    "push_p99_staleness_us": 1700000,
    "push_msgs_per_get": 12.0000
  },
  "latency": {
    "aware_p50_us": 12000,
    "aware_p95_us": 90000
  },
  "engine": {
    "serial_events_per_sec": 1000000.0,
    "speedup": 1.00
  },
  "udp": {
    "dgrams_per_sec_core": 500000.0,
    "batching_speedup": 2.100,
    "syscall_cost_ns": 650.0,
    "lookup_success": 1.000000,
    "p50_wall_us": 2300.0,
    "p99_wall_us": 4800.0
  }
}
"#;

    fn tweak(path_key: &str, new_value: &str) -> String {
        OLD.lines()
            .map(|l| {
                if l.trim_start().starts_with(&format!("\"{path_key}\"")) {
                    let comma = if l.trim_end().ends_with(',') { "," } else { "" };
                    format!("    \"{path_key}\": {new_value}{comma}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parses_sections_into_paths() {
        let m = parse_metrics(OLD);
        assert_eq!(m["cache.hit_ratio"], 0.8);
        assert_eq!(m["maintenance.lost_records"], 0.0);
        assert_eq!(m["freshness.gossip_p99_staleness_us"], 100_000.0);
        assert_eq!(m["seed"], 42.0);
        assert!(!m.contains_key("schema"), "non-numeric values are skipped");
    }

    #[test]
    fn identical_artifacts_pass() {
        assert!(compare(OLD, OLD).is_empty());
    }

    #[test]
    fn higher_better_drop_fails_and_rise_passes() {
        let dropped = tweak("hit_ratio", "0.600000");
        assert_eq!(compare(OLD, &dropped).len(), 1, "20% hit-ratio drop gates");
        let improved = tweak("hit_ratio", "0.900000");
        assert!(compare(OLD, &improved).is_empty());
        let within = tweak("hit_ratio", "0.700000");
        assert!(compare(OLD, &within).is_empty(), "12.5% drop is in-band");
    }

    #[test]
    fn lower_better_growth_fails_and_drop_passes() {
        let grew = tweak("gossip_hops_per_get", "2.4000");
        assert_eq!(compare(OLD, &grew).len(), 1, "20% hops growth gates");
        let shrunk = tweak("gossip_hops_per_get", "1.0000");
        assert!(compare(OLD, &shrunk).is_empty());
    }

    #[test]
    fn completion_time_percentiles_gate_as_lower_better() {
        let slower = tweak("aware_p95_us", "120000");
        assert_eq!(compare(OLD, &slower).len(), 1, "33% p95 growth gates");
        let faster = tweak("aware_p50_us", "8000");
        assert!(compare(OLD, &faster).is_empty());
    }

    #[test]
    fn push_freshness_fields_gate_both_directions() {
        // Schema-v5 push arm: staleness and message cost are lower-better…
        let staler = tweak("push_p99_staleness_us", "2100000");
        assert_eq!(compare(OLD, &staler).len(), 1, "24% staleness growth gates");
        let fresher = tweak("push_p99_staleness_us", "900000");
        assert!(compare(OLD, &fresher).is_empty(), "improvement passes");
        let chattier = tweak("push_msgs_per_get", "15.0000");
        assert_eq!(
            compare(OLD, &chattier).len(),
            1,
            "25% msgs/GET growth gates"
        );
        let quieter = tweak("push_msgs_per_get", "9.0000");
        assert!(compare(OLD, &quieter).is_empty(), "improvement passes");
        // …and the push arm's hit ratio is higher-better.
        let colder = tweak("push_hit_ratio", "0.300000");
        assert_eq!(compare(OLD, &colder).len(), 1, "25% hit drop gates");
        let warmer = tweak("push_hit_ratio", "0.500000");
        assert!(compare(OLD, &warmer).is_empty(), "improvement passes");
    }

    #[test]
    fn zero_baseline_lower_better_gates_any_growth() {
        let lost = tweak("lost_records", "1");
        assert_eq!(compare(OLD, &lost).len(), 1, "0 -> 1 lost records gates");
    }

    #[test]
    fn wall_clock_metrics_are_informational() {
        let slower = tweak("serial_events_per_sec", "100.0");
        let no_speedup = tweak("speedup", "0.10");
        assert!(compare(OLD, &slower).is_empty());
        assert!(compare(OLD, &no_speedup).is_empty());
    }

    #[test]
    fn udp_wall_metrics_are_informational() {
        // Host-dependent measurements must never fail the gate, however
        // badly a slow runner skews them.
        for (key, value) in [
            ("dgrams_per_sec_core", "1000.0"),
            ("batching_speedup", "0.500"),
            ("p50_wall_us", "99999.0"),
            ("p99_wall_us", "999999.0"),
            ("syscall_cost_ns", "5000.0"),
        ] {
            assert!(
                compare(OLD, &tweak(key, value)).is_empty(),
                "udp.{key} must not gate"
            );
        }
    }

    #[test]
    fn udp_lookup_success_gates_as_higher_better() {
        let dropped = tweak("lookup_success", "0.800000");
        // Both maintenance.lookup_success and udp.lookup_success drop (the
        // tweak helper matches by key), and both must gate.
        assert_eq!(compare(OLD, &dropped).len(), 2, "20% success drop gates");
    }

    #[test]
    fn schema_growth_does_not_fail_old_baselines() {
        let extended = OLD.replace(
            "  \"engine\": {",
            "  \"extra\": {\n    \"new_hops_per_get\": 9.0\n  },\n  \"engine\": {",
        );
        assert!(
            compare(OLD, &extended).is_empty(),
            "new metrics are skipped"
        );
        assert!(compare(&extended, OLD).is_empty(), "removed metrics too");
    }
}
