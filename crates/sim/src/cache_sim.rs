//! Hot-block caching / adaptive-replication workload driver.
//!
//! DHARMA's folksonomy traffic is Zipf-shaped (paper §III): a handful of
//! popular `t̄`/`t̂` blocks receive almost all GETs, and in a plain Kademlia
//! overlay every one of those GETs lands on the `k` nodes closest to the
//! block key. This driver replays exactly that workload — `ops` filtered
//! GETs over `keys` tag blocks, ranks drawn Zipf(`zipf_s`), requesters
//! cycling round-robin through the overlay — against a configurable overlay
//! (cache on/off, adaptive replication on/off) and reports the two numbers
//! the `dharma-cache` subsystem exists to move:
//!
//! * **cache hit ratio** — share of GETs answered by a hot-block cache
//!   (requester-local or met on the lookup path) instead of authoritative
//!   storage;
//! * **max per-node GET load** — the `FIND_VALUE` count of the busiest
//!   node, i.e. how sharp the hot-spot is.
//!
//! Used by the `ablation_cache` binary and the `cache_effectiveness`
//! integration test.

use dharma_cache::{CacheConfig, PopularityConfig};
use dharma_dataset::Zipf;
use dharma_kademlia::{KadOutput, KademliaNode, StoredEntry};
use dharma_net::SimNet;
use dharma_types::{sha1, Id160};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::overlay::{build_overlay, OverlayConfig};

/// Cache-workload parameters.
#[derive(Clone, Debug)]
pub struct CacheSimConfig {
    /// Overlay size.
    pub nodes: usize,
    /// Kademlia replication factor (small k sharpens the hot-spot).
    pub k: usize,
    /// Distinct tag-block keys.
    pub keys: usize,
    /// GET operations to replay.
    pub ops: usize,
    /// Zipf exponent of the key-popularity distribution.
    pub zipf_s: f64,
    /// Index-side filtering limit passed on every GET.
    pub top_n: u32,
    /// Hot-block cache configuration (`None` = baseline overlay).
    pub cache: Option<CacheConfig>,
    /// Adaptive replication configuration.
    pub replication: Option<PopularityConfig>,
    /// Master seed.
    pub seed: u64,
}

impl Default for CacheSimConfig {
    fn default() -> Self {
        CacheSimConfig {
            nodes: 64,
            k: 8,
            keys: 32,
            ops: 1500,
            zipf_s: 1.2,
            top_n: 0,
            cache: None,
            replication: None,
            seed: 42,
        }
    }
}

impl CacheSimConfig {
    /// The cache configuration used by the "cache on" ablation rows: large
    /// enough to hold every hot view, TTL far beyond the replay's virtual
    /// duration (staleness is exercised by the unit/property tests; the
    /// ablation isolates load spreading).
    pub fn ablation_cache() -> CacheConfig {
        CacheConfig {
            capacity: 256,
            ttl_us: 600_000_000, // 10 virtual minutes
        }
    }

    /// The adaptive-replication configuration used by the ablation rows.
    pub fn ablation_replication() -> PopularityConfig {
        PopularityConfig {
            half_life_us: 60_000_000,
            hot_threshold: 4.0,
            max_extra_replicas: 8,
            max_tracked: 4096,
            promote_cooldown_us: 2_000_000,
        }
    }
}

/// What one cache-workload replay measured.
#[derive(Clone, Copy, Debug)]
pub struct CacheSimReport {
    /// GET operations replayed.
    pub gets: u64,
    /// GETs answered from a hot-block cache.
    pub cache_hits: u64,
    /// GETs that reached authoritative storage (or found nothing).
    pub cache_misses: u64,
    /// `cache_hits / gets`.
    pub hit_ratio: f64,
    /// `FIND_VALUE` requests received by the busiest node during the replay.
    pub max_get_load: u64,
    /// Mean `FIND_VALUE` requests per node during the replay.
    pub mean_get_load: f64,
    /// Datagrams sent per GET (lookup fan-out plus cache pushes).
    pub messages_per_get: f64,
    /// Replica snapshots pushed beyond `k` by adaptive replication.
    pub replicas_promoted: u64,
}

/// Drives the simulator until operation `op` completes, stepping in small
/// bursts so virtual time stays tight to message latencies (draining the
/// whole queue would fast-forward through every pending RPC-timeout timer
/// and artificially age the caches).
fn drive_to_completion(net: &mut SimNet<KademliaNode>, op: u64) -> KadOutput {
    let mut budget: u64 = 50_000_000;
    loop {
        for (id, out) in net.take_completions() {
            if id == op {
                return out;
            }
        }
        let stepped = net.run_until_idle(64);
        assert!(stepped > 0, "operation {op} never completed");
        budget = budget.saturating_sub(stepped);
        assert!(budget > 0, "operation {op} exceeded the event budget");
    }
}

/// Replays the Zipf GET workload of [`CacheSimConfig`] and reports cache
/// effectiveness and load concentration.
pub fn simulate_cache_workload(cfg: &CacheSimConfig) -> CacheSimReport {
    assert!(cfg.nodes >= 2, "need an overlay");
    assert!(cfg.keys >= 1 && cfg.ops >= 1);
    let mut net = build_overlay(&OverlayConfig {
        nodes: cfg.nodes,
        k: cfg.k,
        seed: cfg.seed,
        cache: cfg.cache.clone(),
        replication: cfg.replication.clone(),
        ..OverlayConfig::default()
    });
    let counters = net.counters();

    // Populate the tag blocks: each key gets one weighted-set block with a
    // few entries, written from a deterministic spread of nodes.
    let keys: Vec<Id160> = (0..cfg.keys)
        .map(|i| sha1(format!("tag-block-{i}").as_bytes()))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let writer = (i % cfg.nodes) as u32;
        let entries: Vec<StoredEntry> = (0..8)
            .map(|e| StoredEntry {
                name: format!("entry-{e}"),
                weight: (e + 1) * 3,
            })
            .collect();
        let op = net.with_node(writer, |n, ctx| n.append_many(ctx, *key, entries));
        drive_to_completion(&mut net, op);
    }

    // Measure only the GET phase.
    let hits_before = counters.cache_hits();
    let misses_before = counters.cache_misses();
    let promoted_before = counters.replicas_promoted();
    let sent_before = counters.sent();
    let load_before: Vec<u64> = (0..cfg.nodes)
        .map(|a| net.node(a as u32).gets_served())
        .collect();

    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCAC4E);
    for i in 0..cfg.ops {
        let requester = (i % cfg.nodes) as u32;
        let key = keys[zipf.sample(&mut rng)];
        let op = net.with_node(requester, |n, ctx| n.get(ctx, key, cfg.top_n));
        drive_to_completion(&mut net, op);
    }
    // Let in-flight cache pushes and promotion replicas land before the
    // final per-node accounting.
    net.run_until_idle(u64::MAX);
    net.take_completions();

    let gets = cfg.ops as u64;
    let cache_hits = counters.cache_hits() - hits_before;
    let cache_misses = counters.cache_misses() - misses_before;
    let loads: Vec<u64> = (0..cfg.nodes)
        .map(|a| net.node(a as u32).gets_served() - load_before[a])
        .collect();
    let max_get_load = loads.iter().copied().max().unwrap_or(0);
    let mean_get_load = loads.iter().sum::<u64>() as f64 / cfg.nodes as f64;
    CacheSimReport {
        gets,
        cache_hits,
        cache_misses,
        hit_ratio: cache_hits as f64 / gets as f64,
        max_get_load,
        mean_get_load,
        messages_per_get: (counters.sent() - sent_before) as f64 / gets as f64,
        replicas_promoted: counters.replicas_promoted() - promoted_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cache: Option<CacheConfig>) -> CacheSimConfig {
        CacheSimConfig {
            nodes: 24,
            k: 4,
            keys: 12,
            ops: 200,
            zipf_s: 1.2,
            cache,
            ..CacheSimConfig::default()
        }
    }

    #[test]
    fn baseline_records_no_hits() {
        let rep = simulate_cache_workload(&small(None));
        assert_eq!(rep.gets, 200);
        assert_eq!(rep.cache_hits, 0, "no cache, no hits");
        assert_eq!(rep.cache_hits + rep.cache_misses, rep.gets);
        assert!(rep.max_get_load as f64 >= rep.mean_get_load);
    }

    #[test]
    fn caching_produces_hits_and_spreads_load() {
        let baseline = simulate_cache_workload(&small(None));
        let cached = simulate_cache_workload(&small(Some(CacheSimConfig::ablation_cache())));
        assert!(
            cached.hit_ratio > 0.3,
            "hit ratio {:.2} too low",
            cached.hit_ratio
        );
        assert!(
            cached.max_get_load < baseline.max_get_load,
            "caching must shave the hot-spot: {} -> {}",
            baseline.max_get_load,
            cached.max_get_load
        );
        assert_eq!(cached.cache_hits + cached.cache_misses, cached.gets);
    }
}
