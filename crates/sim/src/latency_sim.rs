//! Latency workload driver: the `dharma-latency` evaluation.
//!
//! Every earlier experiment scores lookups in *hops* — fine while the
//! simulator drew all delays from one global range, meaningless once links
//! differ by 30× between a metro neighbor and a cross-continent peer. This
//! driver puts the overlay on a geo-clustered [`TopologyConfig`] (including
//! one designated lossy cluster) and measures what a client actually feels:
//! the **wall-clock completion time of each GET**, from the instant the
//! lookup is issued to the instant its value arrives.
//!
//! The replay runs one GET at a time so a sample is never widened by
//! queueing behind an unrelated lookup. A warmup phase (unmeasured GETs
//! from every node) first lets the latency-aware configurations fill their
//! RTT books — proximity neighbor selection and shortlist bias can only
//! act on links they have measured. The report carries the completion-time
//! percentiles, the datagram cost per GET over the measured phase, the
//! success ratio, and the latency-subsystem counters the `ablation_latency`
//! acceptance bar inspects.

use dharma_kademlia::{KadOutput, KademliaNode, LatencyConfig, MaintConfig};
use dharma_net::{SimNet, TopologyConfig};
use dharma_types::{sha1, Id160};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::overlay::{build_overlay, OverlayConfig};

/// Latency-workload parameters.
#[derive(Clone, Debug)]
pub struct LatencySimConfig {
    /// Overlay size.
    pub nodes: usize,
    /// Kademlia replication factor.
    pub k: usize,
    /// Baseline lookup parallelism (and `alpha_min` of the adaptive arm).
    pub alpha: usize,
    /// Distinct keys stored before the GET phase.
    pub keys: usize,
    /// Unmeasured GETs that warm the RTT books before measurement.
    pub warmup_ops: usize,
    /// Measured GET operations.
    pub ops: usize,
    /// The per-link delay/loss model (always on for this driver).
    pub topology: TopologyConfig,
    /// Latency-aware protocol behaviour (`None` = the latency-blind
    /// baseline: same topology, classic LRU routing and fixed α).
    pub latency: Option<LatencyConfig>,
    /// Master seed.
    pub seed: u64,
}

impl Default for LatencySimConfig {
    fn default() -> Self {
        LatencySimConfig {
            nodes: 64,
            k: 8,
            alpha: 3,
            keys: 32,
            warmup_ops: 480,
            ops: 600,
            topology: LatencySimConfig::ablation_topology(),
            latency: None,
            seed: 42,
        }
    }
}

impl LatencySimConfig {
    /// The topology of the ablation rows: four metro clusters (1–15 ms
    /// within, 15–140 ms across, ±2 ms jitter, 1% baseline loss) with
    /// cluster 3 designated lossy (25% on every link it touches). The wide
    /// per-class spread is the point: links inside one metro differ by 15×
    /// and WAN paths by ~10×, so *measuring* links and preferring the fast
    /// ones beats querying in oblivious XOR order — with near-uniform links
    /// there would be nothing for proximity selection to exploit. RPC
    /// timeouts (300 ms) still exceed the worst round trip
    /// (2 × 140 + 2 × 2 ms), so every timeout is loss, not distance.
    pub fn ablation_topology() -> TopologyConfig {
        TopologyConfig {
            clusters: 4,
            intra_us: (1_000, 15_000),
            inter_us: (15_000, 140_000),
            jitter_us: 2_000,
            base_loss: 0.01,
            lossy_cluster: Some(3),
            lossy_loss: 0.25,
        }
    }

    /// The light liveness loop every configuration runs (probes every
    /// 2 s, repair effectively off). Persistent loss steadily evicts
    /// contacts from lossy-cluster nodes' tables; without the probe
    /// cycle's re-discovery those nodes decay into isolation and drag
    /// the success ratio down identically in every arm.
    pub fn ablation_maintenance() -> MaintConfig {
        MaintConfig::builder()
            .probe_interval_us(2_000_000)
            .repair_interval_us(3_600_000_000)
            .join_handoff(false)
            .demote_interval_us(None)
            .build()
            .expect("ablation maintenance config is in range")
    }
}

/// What one latency replay measured.
#[derive(Clone, Debug)]
pub struct LatencySimReport {
    /// Measured GET operations.
    pub gets: u64,
    /// GETs that returned a value.
    pub successes: u64,
    /// `successes / gets`.
    pub success_ratio: f64,
    /// Median GET completion time, µs.
    pub p50_us: u64,
    /// 95th-percentile GET completion time, µs.
    pub p95_us: u64,
    /// Worst GET completion time, µs.
    pub max_us: u64,
    /// Mean GET completion time, µs.
    pub mean_us: f64,
    /// All datagrams sent per measured GET.
    pub messages_per_get: f64,
    /// RTT samples folded into the fleet's books (whole run).
    pub rtt_samples: u64,
    /// Proximity demotions of slow bucket residents (whole run).
    pub pns_evictions: u64,
    /// α widening steps taken on timeouts (whole run).
    pub alpha_widened: u64,
    /// α narrowing steps taken on clean streaks (whole run).
    pub alpha_narrowed: u64,
    /// Mean per-node α at the end of the run.
    pub mean_final_alpha: f64,
}

/// Drives the net until `op` completes, in fine virtual-time slices so the
/// recorded completion instant overshoots the true one by ≤ 0.25 ms.
fn drive_to_completion(net: &mut SimNet<KademliaNode>, op: u64) -> KadOutput {
    let deadline = net.now_us() + 30_000_000;
    loop {
        for (id, out) in net.take_completions() {
            if id == op {
                return out;
            }
        }
        assert!(
            net.now_us() < deadline,
            "operation {op} still pending after 30 virtual seconds"
        );
        net.run_until(net.now_us() + 250);
    }
}

/// Replays the latency workload of [`LatencySimConfig`] and reports
/// completion-time percentiles, datagram cost and success ratio.
pub fn simulate_latency(cfg: &LatencySimConfig) -> LatencySimReport {
    assert!(cfg.nodes >= 8, "need an overlay");
    assert!(cfg.keys >= 1 && cfg.ops >= 1);
    let overlay = OverlayConfig {
        nodes: cfg.nodes,
        k: cfg.k,
        alpha: cfg.alpha,
        seed: cfg.seed,
        topology: Some(cfg.topology.clone()),
        latency: cfg.latency.clone(),
        maintenance: Some(LatencySimConfig::ablation_maintenance()),
        ..OverlayConfig::default()
    };
    let mut net = build_overlay(&overlay);
    let counters = net.counters();

    // Join retries: a lossy-cluster node can lose its whole bootstrap
    // exchange to the 25% link loss — timeouts then evict even its seed
    // contact and it starts the run isolated. Real deployments retry the
    // join against their configured bootstrap peers until it takes;
    // mirror that (identically in every arm) before the workload starts.
    let rendezvous = net.node(0).contact().clone();
    for _ in 0..8 {
        let strays: Vec<u32> = (1..cfg.nodes as u32)
            .filter(|a| net.node(*a).routing().len() < 3)
            .collect();
        if strays.is_empty() {
            break;
        }
        for a in strays {
            net.node_mut(a).add_seed(rendezvous.clone());
            net.with_node(a, |n, ctx| {
                n.bootstrap(ctx);
            });
        }
        net.run_until(net.now_us() + 2_000_000);
        net.take_completions();
    }

    // Store every key at full replication. Loss can swallow STOREs (the
    // write path has no replica-count feedback), so writers re-issue the
    // idempotent append from different vantage points until the replica
    // set is whole — otherwise an under-replicated key would charge its
    // unlucky write to every configuration's GET success ratio.
    let keys: Vec<Id160> = (0..cfg.keys)
        .map(|i| sha1(format!("latency-key-{i}").as_bytes()))
        .collect();
    let replica_floor = cfg.k.min(cfg.nodes / 2);
    for (i, key) in keys.iter().enumerate() {
        let key = *key;
        for attempt in 0..5 {
            let writer = ((i + attempt * 13) % cfg.nodes) as u32;
            let op = net.with_node(writer, |n, ctx| n.append(ctx, key, "payload", 1));
            drive_to_completion(&mut net, op);
            let replicas = (0..cfg.nodes as u32)
                .filter(|a| net.node(*a).storage().contains(&key))
                .count();
            if replicas >= replica_floor {
                break;
            }
        }
    }

    // One GET = what a client experiences: up to three lookup attempts,
    // timed from first issue to first success (or final failure).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1A7E);
    let issue_get = |net: &mut SimNet<KademliaNode>, rng: &mut StdRng| -> (u64, bool) {
        let requester = rng.gen_range(0..cfg.nodes as u32);
        let key = keys[rng.gen_range(0..cfg.keys)];
        let issued_at = net.now_us();
        for _ in 0..3 {
            let op = net.with_node(requester, |n, ctx| n.get(ctx, key, 0));
            let out = drive_to_completion(net, op);
            let KadOutput::Value { value, .. } = out else {
                panic!("GET completed with a non-value output");
            };
            if value.is_some() {
                return (net.now_us() - issued_at, true);
            }
        }
        (net.now_us() - issued_at, false)
    };

    // Warmup: every latency-aware behaviour needs measured links first.
    for _ in 0..cfg.warmup_ops {
        issue_get(&mut net, &mut rng);
    }

    let sent_before = counters.sent();
    let mut times: Vec<u64> = Vec::with_capacity(cfg.ops);
    let mut successes = 0u64;
    for _ in 0..cfg.ops {
        let (elapsed, ok) = issue_get(&mut net, &mut rng);
        times.push(elapsed);
        if ok {
            successes += 1;
        }
    }

    times.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((times.len() as f64 * p).ceil() as usize).saturating_sub(1);
        times[idx.min(times.len() - 1)]
    };
    let gets = cfg.ops as u64;
    let alpha_sum: usize = (0..cfg.nodes as u32)
        .map(|a| net.node(a).current_alpha())
        .sum();
    LatencySimReport {
        gets,
        successes,
        success_ratio: successes as f64 / gets as f64,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        max_us: *times.last().expect("ops >= 1"),
        mean_us: times.iter().sum::<u64>() as f64 / gets as f64,
        messages_per_get: (counters.sent() - sent_before) as f64 / gets as f64,
        rtt_samples: counters.rtt_samples(),
        pns_evictions: counters.pns_evictions(),
        alpha_widened: counters.alpha_widened(),
        alpha_narrowed: counters.alpha_narrowed(),
        mean_final_alpha: alpha_sum as f64 / cfg.nodes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(latency: Option<LatencyConfig>) -> LatencySimConfig {
        LatencySimConfig {
            nodes: 24,
            k: 4,
            keys: 8,
            warmup_ops: 40,
            ops: 120,
            latency,
            seed: 7,
            ..LatencySimConfig::default()
        }
    }

    #[test]
    fn baseline_measures_times_without_latency_machinery() {
        let rep = simulate_latency(&small(None));
        assert_eq!(rep.gets, 120);
        assert!(rep.success_ratio > 0.9, "success {:.3}", rep.success_ratio);
        assert!(rep.p50_us > 0 && rep.p50_us <= rep.p95_us);
        assert_eq!(rep.rtt_samples, 0);
        assert_eq!(rep.pns_evictions, 0);
        assert_eq!(rep.alpha_widened, 0);
        assert!((rep.mean_final_alpha - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn latency_aware_overlay_samples_and_does_not_slow_lookups() {
        let base = simulate_latency(&small(None));
        let aware = simulate_latency(&small(Some(LatencyConfig::default())));
        assert!(aware.rtt_samples > 0, "books stayed empty");
        assert!(
            aware.p50_us <= base.p50_us,
            "latency awareness slowed the median GET: {} vs {} µs",
            aware.p50_us,
            base.p50_us
        );
        assert!(
            aware.success_ratio > 0.9,
            "success {:.3}",
            aware.success_ratio
        );
    }
}
