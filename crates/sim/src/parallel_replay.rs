//! Parallel replay of the §V-B protocol.
//!
//! The sequential [`crate::replay()`] interleaves events across resources with
//! a Fenwick tree — faithful to the paper, but single-threaded. The key
//! observation enabling parallelism: **the approximated FG depends only on
//! the per-resource order of events**, not on how streams of different
//! resources interleave:
//!
//! * `Tags(r)` evolution is entirely resource-local;
//! * forward `(t, τ)` updates read only resource-local state (`u(τ, r)` and
//!   attachment status);
//! * reverse `(τ, t)` updates are `+1` token appends — **additive and
//!   commutative**, so any global interleaving yields the same sums.
//!
//! Resources are therefore partitioned across the `dharma-par` pool; each
//! worker samples its resources' event orders from an RNG seeded by
//! `(seed, resource)` and applies arc updates into a **per-tag sharded
//! lock table**. The result is bit-for-bit deterministic for a given seed,
//! independent of thread count and scheduling.
//!
//! Caveat: [`BPolicy::LiteralB`] reads *global* arc existence at event time
//! and is genuinely order-dependent, so it is rejected here (the sequential
//! engine handles it).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dharma_folksonomy::{ApproxPolicy, BPolicy, Fg, ResId, TagId, Trg};
use dharma_par::ThreadPool;
use dharma_types::FxHashMap;

/// Replays `reference` under `policy` using every worker in `pool`,
/// returning the approximated folksonomy graph.
///
/// Equivalent in distribution to the sequential engine (identical
/// per-resource event-order law); exactly equal to [`Fg::derive_exact`]
/// under [`ApproxPolicy::EXACT`].
///
/// # Panics
///
/// Panics if `policy.b_policy == BPolicy::LiteralB` (order-dependent; see
/// module docs).
pub fn replay_parallel(reference: &Trg, policy: ApproxPolicy, seed: u64, pool: &ThreadPool) -> Fg {
    assert!(
        policy.b_policy != BPolicy::LiteralB,
        "LiteralB is order-dependent and cannot be replayed in parallel"
    );
    let num_tags = reference.num_tags();
    let num_res = reference.num_resources();

    // One shard (tiny parking_lot mutex + map) per source tag.
    let shards: Vec<Mutex<FxHashMap<TagId, u64>>> = (0..num_tags)
        .map(|_| Mutex::new(FxHashMap::default()))
        .collect();

    let resources: Vec<u32> = (0..num_res as u32).collect();
    let chunk = dharma_par::chunk_size(num_res, pool.threads(), 64);
    dharma_par::par_for_each_index(pool, resources.len(), chunk, |idx| {
        let r = ResId(resources[idx]);
        // (tag, static weight, remaining, current) — the resource playlist.
        let mut playlist: Vec<(TagId, u32, u32, u32)> =
            reference.tags_of(r).map(|(t, u)| (t, u, u, 0)).collect();
        // HashMap iteration order varies; sort for per-seed determinism.
        playlist.sort_unstable_by_key(|&(t, ..)| t);
        if playlist.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(r.0) << 17) ^ 0x9E3779B97F4A7C15);
        let total: u64 = playlist.iter().map(|&(_, u, _, _)| u64::from(u)).sum();

        for _ in 0..total {
            // Draw the next tag ∝ static weight among non-exhausted entries
            // — identical to the sequential within-resource law.
            let live: u64 = playlist
                .iter()
                .filter(|&&(_, _, rem, _)| rem > 0)
                .map(|&(_, u, _, _)| u64::from(u))
                .sum();
            let mut pick = rng.gen_range(0..live);
            let mut chosen = usize::MAX;
            for (i, &(_, u, rem, _)) in playlist.iter().enumerate() {
                if rem == 0 {
                    continue;
                }
                let w = u64::from(u);
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            let t = playlist[chosen].0;
            let newly_attached = playlist[chosen].3 == 0;
            playlist[chosen].2 -= 1;
            playlist[chosen].3 += 1;

            // Forward arcs (t, τ) — all attached neighbors, one shard lock.
            if newly_attached {
                let mut out = shards[t.idx()].lock();
                for &(tau, _, _, cur) in &playlist {
                    if tau == t || cur == 0 {
                        continue;
                    }
                    let delta = match policy.b_policy {
                        BPolicy::Exact => u64::from(cur),
                        BPolicy::UnitIncrement => 1,
                        BPolicy::LiteralB => unreachable!("rejected above"),
                    };
                    *out.entry(tau).or_insert(0) += delta;
                }
            }

            // Reverse arcs (τ, t) — ≤ k random attached neighbors.
            let mut attached: Vec<TagId> = playlist
                .iter()
                .filter(|&&(tau, _, _, cur)| tau != t && cur > 0)
                .map(|&(tau, _, _, _)| tau)
                .collect();
            if let Some(k) = policy.connection_k {
                if attached.len() > k {
                    // partial_shuffle keeps determinism per (seed, r).
                    use rand::seq::SliceRandom;
                    attached.partial_shuffle(&mut rng, k);
                    attached.truncate(k);
                }
            }
            for tau in attached {
                *shards[tau.idx()].lock().entry(t).or_insert(0) += 1;
            }
        }
    });

    // Assemble the Fg from the shards.
    let mut fg = Fg::with_capacity(num_tags);
    for (t1, shard) in shards.into_iter().enumerate() {
        let map = shard.into_inner();
        for (t2, w) in map {
            fg.add_sim(TagId(t1 as u32), t2, w);
        }
    }
    fg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, ReplayConfig};
    use dharma_dataset::{GeneratorConfig, Scale};

    fn reference() -> Trg {
        GeneratorConfig::lastfm_like(Scale::Tiny, 5).generate().trg
    }

    #[test]
    fn exact_parallel_equals_derivation() {
        let trg = reference();
        let pool = ThreadPool::new(4);
        let par = replay_parallel(&trg, ApproxPolicy::EXACT, 3, &pool);
        let derived = Fg::derive_exact(&trg);
        assert_eq!(par.num_arcs(), derived.num_arcs());
        for (t1, t2, w) in par.arcs() {
            assert_eq!(derived.sim(t1, t2), w, "arc {t1:?}->{t2:?}");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let trg = reference();
        let a = replay_parallel(&trg, ApproxPolicy::paper(2), 7, &ThreadPool::new(1));
        let b = replay_parallel(&trg, ApproxPolicy::paper(2), 7, &ThreadPool::new(8));
        assert_eq!(a.num_arcs(), b.num_arcs());
        for (t1, t2, w) in a.arcs() {
            assert_eq!(b.sim(t1, t2), w);
        }
    }

    #[test]
    fn statistically_matches_sequential_engine() {
        // Different RNG streams ⇒ not bit-identical, but arc counts and
        // total weight must land close (same distribution).
        let trg = reference();
        let pool = ThreadPool::new(4);
        let par = replay_parallel(&trg, ApproxPolicy::paper(1), 11, &pool);
        let seq = replay(&trg, &ReplayConfig::paper(1, 11));
        let (pa, sa) = (par.num_arcs() as f64, seq.fg().num_arcs() as f64);
        assert!(
            (pa - sa).abs() / sa < 0.02,
            "arc counts diverge: parallel {pa} vs sequential {sa}"
        );
        let wsum = |fg: &Fg| -> u64 { fg.arcs().map(|(_, _, w)| w).sum() };
        let (pw, sw) = (wsum(&par) as f64, wsum(seq.fg()) as f64);
        assert!(
            (pw - sw).abs() / sw < 0.02,
            "weight mass diverges: parallel {pw} vs sequential {sw}"
        );
    }

    #[test]
    #[should_panic(expected = "order-dependent")]
    fn literal_b_is_rejected() {
        let trg = reference();
        let pool = ThreadPool::new(2);
        let policy = ApproxPolicy {
            connection_k: Some(1),
            b_policy: BPolicy::LiteralB,
        };
        let _ = replay_parallel(&trg, policy, 1, &pool);
    }
}
