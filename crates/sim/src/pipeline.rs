//! Shared experiment pipeline: dataset → exact FG → replayed FGs.

// dharma-lint: allow-file(D1): harness-side stderr timing logs around fully
// deterministic stages; the timings never enter any simulated state.

use std::time::Instant;

use dharma_dataset::{Dataset, GeneratorConfig};
use dharma_folksonomy::{Fg, Folksonomy};
use dharma_par::ThreadPool;

use crate::args::ExpArgs;
use crate::replay::{replay, ReplayConfig};

/// Everything an experiment binary needs: the dataset, its exact folksonomy
/// graph, and a worker pool.
pub struct ExpContext {
    /// Parsed CLI arguments.
    pub args: ExpArgs,
    /// The (synthetic) reference dataset.
    pub dataset: Dataset,
    /// The exact FG derived from the reference TRG ("original graph").
    pub exact_fg: Fg,
    /// Worker pool.
    pub pool: ThreadPool,
}

impl ExpContext {
    /// Builds the context: generates the dataset and derives the exact FG,
    /// logging timings to stderr.
    pub fn build(args: ExpArgs) -> Self {
        let pool = args.pool();
        let t0 = Instant::now();
        let dataset = GeneratorConfig::lastfm_like(args.scale, args.seed).generate();
        let s = dataset.stats();
        eprintln!(
            "[pipeline] dataset scale={:?} seed={}: {} tags, {} resources, {} annotations ({} edges) in {:.1?}",
            args.scale,
            args.seed,
            s.active_tags,
            s.active_resources,
            s.annotations,
            s.edges,
            t0.elapsed()
        );
        let t1 = Instant::now();
        let exact_fg = Fg::derive_exact(&dataset.trg);
        eprintln!(
            "[pipeline] exact FG: {} arcs in {:.1?}",
            exact_fg.num_arcs(),
            t1.elapsed()
        );
        ExpContext {
            args,
            dataset,
            exact_fg,
            pool,
        }
    }

    /// Replays the reference under the paper's protocol at connection
    /// parameter `k`, logging timing.
    pub fn replay_paper(&self, k: usize) -> Folksonomy {
        let t = Instant::now();
        let model = replay(
            &self.dataset.trg,
            &ReplayConfig::paper(k, self.args.seed ^ k as u64),
        );
        eprintln!(
            "[pipeline] replay k={k}: {} arcs in {:.1?}",
            model.fg().num_arcs(),
            t.elapsed()
        );
        model
    }

    /// Replays under an arbitrary configuration.
    pub fn replay_with(&self, cfg: &ReplayConfig) -> Folksonomy {
        let t = Instant::now();
        let model = replay(&self.dataset.trg, cfg);
        eprintln!(
            "[pipeline] replay policy={:?}: {} arcs in {:.1?}",
            cfg.policy,
            model.fg().num_arcs(),
            t.elapsed()
        );
        model
    }
}
