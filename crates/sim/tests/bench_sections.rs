//! Pins the deterministic quality sections of `BENCH_ci.json` at the
//! default seed, byte-for-byte.
//!
//! The four sim sections (cache / maintenance / freshness / latency) are
//! pure functions of the seed — the engine trace behind them is
//! bit-reproducible, so their values must not move unless a protocol
//! change *intends* to move them. This test replicates `bench_ci`'s exact
//! section configs and formats the metrics with the same format strings,
//! so any drift — a hash-order leak, an RNG draw reordering, an
//! accidental config change — fails CI with a readable before/after
//! instead of silently shifting the benchmark artifact. (The engine and
//! udp sections are wall-clock and are deliberately not pinned.)
//!
//! If a change legitimately moves these numbers, rerun
//! `cargo run --release -p dharma-sim --bin bench_ci`, copy the new
//! values here, and say why in the commit message.

use dharma_kademlia::LatencyConfig;
use dharma_sim::{
    simulate_cache_workload, simulate_churn, simulate_freshness, simulate_latency, CacheSimConfig,
    ChurnConfig, FreshSimConfig, LatencySimConfig,
};

const SEED: u64 = 42;

#[test]
fn cache_section_is_pinned() {
    let base = CacheSimConfig {
        nodes: 32,
        k: 6,
        keys: 16,
        ops: 600,
        zipf_s: 1.2,
        seed: SEED,
        ..CacheSimConfig::default()
    };
    let off = simulate_cache_workload(&base);
    let on = simulate_cache_workload(&CacheSimConfig {
        cache: Some(CacheSimConfig::ablation_cache()),
        replication: Some(CacheSimConfig::ablation_replication()),
        ..base
    });
    let max_load_ratio = if on.max_get_load == 0 {
        0.0
    } else {
        off.max_get_load as f64 / on.max_get_load as f64
    };
    let got = format!(
        "hit_ratio={:.6} max_load_ratio={:.4} messages_per_get={:.4}",
        on.hit_ratio, max_load_ratio, on.messages_per_get
    );
    assert_eq!(
        got,
        "hit_ratio=0.430000 max_load_ratio=3.9245 messages_per_get=3.0917"
    );
}

#[test]
fn maintenance_section_is_pinned() {
    let churn = simulate_churn(&ChurnConfig {
        nodes: 24,
        k: 8,
        keys: 12,
        horizon_us: 60_000_000,
        op_interval_us: 500_000,
        mean_session_us: 20_000_000,
        mean_downtime_us: 5_000_000,
        sample_interval_us: 3_000_000,
        repair: Some(ChurnConfig::ablation_adaptive()),
        seed: SEED,
        ..ChurnConfig::default()
    });
    let got = format!(
        "lookup_success={:.6} lost_records={} maint_msgs_per_get={:.4}",
        churn.lookup_success, churn.lost_records, churn.maint_msgs_per_get
    );
    assert_eq!(
        got,
        "lookup_success=1.000000 lost_records=0 maint_msgs_per_get=25.9167"
    );
}

#[test]
fn freshness_section_is_pinned() {
    let base = FreshSimConfig {
        nodes: 32,
        k: 6,
        keys: 16,
        ops: 600,
        seed: SEED,
        ..FreshSimConfig::default()
    };
    let ttl = simulate_freshness(&base);
    let gossip = simulate_freshness(&FreshSimConfig {
        freshness: Some(FreshSimConfig::ablation_freshness()),
        ..base
    });
    let got = format!(
        "ttl_hit={:.6} gossip_hit={:.6} ttl_p99_staleness_us={} gossip_p99_staleness_us={} \
         ttl_hops={:.4} gossip_hops={:.4}",
        ttl.hit_ratio,
        gossip.hit_ratio,
        ttl.p99_staleness_us,
        gossip.p99_staleness_us,
        ttl.mean_hops_per_get,
        gossip.mean_hops_per_get
    );
    assert_eq!(
        got,
        "ttl_hit=0.265000 gossip_hit=0.403333 ttl_p99_staleness_us=3600000 \
         gossip_p99_staleness_us=2410000 ttl_hops=1.8583 gossip_hops=1.2817"
    );
}

#[test]
fn latency_section_is_pinned() {
    let base = LatencySimConfig {
        nodes: 32,
        keys: 16,
        warmup_ops: 240,
        ops: 400,
        seed: SEED,
        ..LatencySimConfig::default()
    };
    let blind = simulate_latency(&base);
    let full = simulate_latency(&LatencySimConfig {
        latency: Some(LatencyConfig::default()),
        ..base
    });
    let got = format!(
        "blind_p50={} blind_p95={} blind_mpg={:.4} aware_p50={} aware_p95={} aware_mpg={:.4} \
         aware_success={:.6}",
        blind.p50_us,
        blind.p95_us,
        blind.messages_per_get,
        full.p50_us,
        full.p95_us,
        full.messages_per_get,
        full.success_ratio
    );
    assert_eq!(
        got,
        "blind_p50=18750 blind_p95=241000 blind_mpg=7.2875 aware_p50=12500 aware_p95=88500 \
         aware_mpg=5.9400 aware_success=1.000000"
    );
}
