//! Example applications for the DHARMA stack. The runnable sources live
//! in the top-level `examples/` directory (see Cargo.toml `[[example]]`).

#![forbid(unsafe_code)]
