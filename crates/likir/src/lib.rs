//! A Likir-style identity layer (Aiello et al., "Tempering Kademlia with a
//! robust identity based system", P2P '08 — reference \[12\] of the DHARMA
//! paper).
//!
//! Likir hardens Kademlia against Sybil and storage-pollution attacks by
//! binding every overlay node to a certified user identity:
//!
//! * a **Certification Authority** registers users and issues certificates
//!   binding `userId → nodeId` (with `nodeId = H(userId)`, so node ids
//!   cannot be chosen freely);
//! * RPCs travel in **signed envelopes** carrying the sender's certificate
//!   and a nonce (anti-replay);
//! * stored values are **authenticated content records** signed by their
//!   author, so storage nodes and readers can verify provenance.
//!
//! **Cryptography substitution** (see DESIGN.md): the original Likir uses
//! RSA. This reproduction uses HMAC-SHA1 over a from-scratch SHA-1
//! ([`dharma_types::hmac`]): the CA derives a per-user MAC key at
//! registration, and verification re-derives it from the CA secret. The
//! *protocol shape* — certificates, envelopes, nonces, per-content
//! signatures, verification outcomes — is identical; only the asymmetric
//! property is dropped, which no experiment in the paper measures. The
//! [`CaVerifier`] handle models "anyone can verify" exactly as a published
//! CA public key would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod envelope;
pub mod replay_guard;
pub mod secure_node;

pub use ca::{CaVerifier, Certificate, CertificationAuthority, Identity};
pub use envelope::{AuthenticatedRecord, SignedEnvelope};
pub use replay_guard::ReplayGuard;
pub use secure_node::{SecureNode, SecurityStats};
