//! Running a protocol node over signed envelopes — Likir's deployment model.
//!
//! Likir wraps every Kademlia RPC in a signed envelope; the receiver
//! verifies the sender's certificate and signature (and a nonce window
//! against replays) *before* the payload reaches the protocol logic.
//! [`SecureNode`] implements exactly that as a transparent
//! [`dharma_net::Node`] adapter: any inner node — in practice
//! `dharma_kademlia::KademliaNode` — runs unmodified on an overlay where
//! every datagram is authenticated.
//!
//! Unauthenticated, forged, tampered or replayed datagrams are counted and
//! dropped; the inner node never observes them. This is the mechanism that
//! gives Likir its Sybil/pollution resistance: a storage node only accepts
//! writes from certified identities, and `nodeId = H(userId)` stops id
//! grinding.

use bytes::Bytes;
use rand::Rng;

use dharma_net::{Ctx, Node, NodeAddr};
use dharma_types::{WireDecode, WireEncode};

use crate::ca::{CaVerifier, Identity};
use crate::envelope::SignedEnvelope;
use crate::replay_guard::ReplayGuard;

/// Statistics of the security layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SecurityStats {
    /// Envelopes that verified and were delivered to the inner node.
    pub accepted: u64,
    /// Datagrams that failed to decode as envelopes.
    pub malformed: u64,
    /// Envelopes with invalid certificates or signatures.
    pub forged: u64,
    /// Envelopes rejected by the anti-replay window.
    pub replayed: u64,
}

/// A [`Node`] adapter sealing every outgoing datagram in a
/// [`SignedEnvelope`] and verifying every incoming one.
pub struct SecureNode<N: Node> {
    inner: N,
    identity: Identity,
    verifier: CaVerifier,
    guard: ReplayGuard,
    next_nonce: u64,
    stats: SecurityStats,
}

impl<N: Node> SecureNode<N> {
    /// Wraps `inner` with the given identity and verification handle.
    pub fn new(inner: N, identity: Identity, verifier: CaVerifier) -> Self {
        SecureNode {
            inner,
            identity,
            verifier,
            guard: ReplayGuard::new(1024, 4096),
            next_nonce: 1,
            stats: SecurityStats::default(),
        }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Mutable access to the wrapped node (client-operation issuance goes
    /// through [`SecureNode::with_inner`] so effects get sealed).
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Security-layer counters.
    pub fn stats(&self) -> SecurityStats {
        self.stats
    }

    /// Runs a closure against the inner node, sealing any sends it queues —
    /// the secure analogue of driving the node directly.
    pub fn with_inner<R>(
        &mut self,
        ctx: &mut Ctx<N::Output>,
        f: impl FnOnce(&mut N, &mut Ctx<N::Output>) -> R,
    ) -> R {
        let mut inner_ctx = Ctx::new(ctx.now_us, ctx.self_addr, ctx.rng.gen());
        let out = f(&mut self.inner, &mut inner_ctx);
        self.forward_effects(ctx, inner_ctx);
        out
    }

    /// Seals and forwards the inner node's buffered effects into the outer
    /// context.
    fn forward_effects(&mut self, ctx: &mut Ctx<N::Output>, inner_ctx: Ctx<N::Output>) {
        let (sends, timers, completions) = inner_ctx.into_effects();
        for msg in sends {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            let envelope = SignedEnvelope::seal(&self.identity, nonce, msg.payload.to_vec());
            ctx.send(msg.to, envelope.encode_to_bytes());
        }
        for (delay, id) in timers {
            ctx.set_timer(delay, id);
        }
        for (op, output) in completions {
            ctx.complete(op, output);
        }
    }
}

impl<N: Node> Node for SecureNode<N> {
    type Output = N::Output;

    fn on_start(&mut self, ctx: &mut Ctx<N::Output>) {
        let mut inner_ctx = Ctx::new(ctx.now_us, ctx.self_addr, ctx.rng.gen());
        self.inner.on_start(&mut inner_ctx);
        self.forward_effects(ctx, inner_ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<N::Output>, from: NodeAddr, payload: Bytes) {
        let Ok(envelope) = SignedEnvelope::decode_exact(&payload) else {
            self.stats.malformed += 1;
            return;
        };
        let Ok(inner_payload) = envelope.open(&self.verifier, ctx.now_us) else {
            self.stats.forged += 1;
            return;
        };
        if !self.guard.accept(&envelope.cert.user_id, envelope.nonce) {
            self.stats.replayed += 1;
            return;
        }
        self.stats.accepted += 1;
        let inner_payload = Bytes::copy_from_slice(inner_payload);
        let mut inner_ctx = Ctx::new(ctx.now_us, ctx.self_addr, ctx.rng.gen());
        self.inner.on_message(&mut inner_ctx, from, inner_payload);
        self.forward_effects(ctx, inner_ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<N::Output>, id: u64) {
        let mut inner_ctx = Ctx::new(ctx.now_us, ctx.self_addr, ctx.rng.gen());
        self.inner.on_timer(&mut inner_ctx, id);
        self.forward_effects(ctx, inner_ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificationAuthority;
    use dharma_net::{SimConfig, SimNet};

    /// A trivial inner node that echoes payloads back and logs them.
    struct Echo {
        got: Vec<Vec<u8>>,
    }

    impl Node for Echo {
        type Output = ();

        fn on_message(&mut self, ctx: &mut Ctx<()>, from: NodeAddr, payload: Bytes) {
            self.got.push(payload.to_vec());
            if payload.as_ref() == b"ping" {
                ctx.send(from, Bytes::from_static(b"pong"));
            }
        }
    }

    /// A raw (non-Likir) node that injects unsigned garbage.
    struct Rogue;
    impl Node for Rogue {
        type Output = ();
        fn on_message(&mut self, _: &mut Ctx<()>, _: NodeAddr, _: Bytes) {}
    }

    fn net() -> SimNet<SecureNode<Echo>> {
        SimNet::new(SimConfig {
            latency_min_us: 100,
            latency_max_us: 1_000,
            drop_rate: 0.0,
            mtu: 4096,
            seed: 5,
            shards: 1,
            topology: None,
        })
    }

    #[test]
    fn sealed_ping_pong_roundtrip() {
        let ca = CertificationAuthority::new(b"net-ca");
        let mut net = net();
        let a = net.add_node(SecureNode::new(
            Echo { got: vec![] },
            ca.register("alice", 0),
            ca.verifier(),
        ));
        let b = net.add_node(SecureNode::new(
            Echo { got: vec![] },
            ca.register("bob", 0),
            ca.verifier(),
        ));
        net.with_node(a, |node, ctx| {
            node.with_inner(ctx, |_, inner_ctx| {
                inner_ctx.send(b, Bytes::from_static(b"ping"));
            });
        });
        net.run_until_idle(100);
        assert_eq!(net.node(b).inner().got, vec![b"ping".to_vec()]);
        assert_eq!(net.node(a).inner().got, vec![b"pong".to_vec()]);
        assert_eq!(net.node(b).stats().accepted, 1);
        assert_eq!(net.node(a).stats().accepted, 1);
    }

    #[test]
    fn unsigned_junk_never_reaches_inner_node() {
        let ca = CertificationAuthority::new(b"net-ca");
        let mut secure: SecureNode<Echo> =
            SecureNode::new(Echo { got: vec![] }, ca.register("alice", 0), ca.verifier());
        let mut ctx: Ctx<()> = Ctx::new(0, 0, 1);
        secure.on_message(&mut ctx, 9, Bytes::from_static(b"not an envelope"));
        assert!(secure.inner().got.is_empty());
        assert_eq!(secure.stats().malformed, 1);
    }

    #[test]
    fn foreign_ca_envelopes_are_forged() {
        let ca = CertificationAuthority::new(b"net-ca");
        let evil = CertificationAuthority::new(b"evil-ca");
        let mallory = evil.register("mallory", 0);
        let envelope = SignedEnvelope::seal(&mallory, 1, b"ping".to_vec());
        let mut secure: SecureNode<Echo> =
            SecureNode::new(Echo { got: vec![] }, ca.register("alice", 0), ca.verifier());
        let mut ctx: Ctx<()> = Ctx::new(0, 0, 1);
        secure.on_message(&mut ctx, 9, envelope.encode_to_bytes());
        assert!(secure.inner().got.is_empty());
        assert_eq!(secure.stats().forged, 1);
    }

    #[test]
    fn replayed_envelopes_are_dropped() {
        let ca = CertificationAuthority::new(b"net-ca");
        let bob = ca.register("bob", 0);
        let envelope = SignedEnvelope::seal(&bob, 42, b"ping".to_vec());
        let bytes: Bytes = envelope.encode_to_bytes();
        let mut secure: SecureNode<Echo> =
            SecureNode::new(Echo { got: vec![] }, ca.register("alice", 0), ca.verifier());
        let mut ctx: Ctx<()> = Ctx::new(0, 0, 1);
        secure.on_message(&mut ctx, 9, bytes.clone());
        secure.on_message(&mut ctx, 9, bytes);
        assert_eq!(secure.inner().got.len(), 1, "second copy is a replay");
        assert_eq!(secure.stats().replayed, 1);
        assert_eq!(secure.stats().accepted, 1);
    }

    #[test]
    fn rogue_node_type_is_ignored_by_design() {
        // Compile-time demonstration that the rogue node simply speaks a
        // different (unsigned) dialect — its traffic lands in `malformed`.
        let _ = Rogue;
    }
}
