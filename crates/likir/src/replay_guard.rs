//! Anti-replay protection for signed envelopes.
//!
//! A [`SignedEnvelope`](crate::SignedEnvelope) carries a nonce, but a
//! verifier must also *remember* recently seen nonces or an attacker can
//! re-send a captured envelope verbatim. [`ReplayGuard`] keeps a bounded
//! per-sender window of accepted nonces: monotonically increasing nonces
//! are accepted cheaply; reordered nonces are accepted while inside the
//! window; duplicates and stale nonces are rejected.
//!
//! The window model matches UDP reality (modest reordering, no unbounded
//! memory) and is the standard construction (cf. IPsec's anti-replay
//! window).

use dharma_types::{FxHashMap, FxHashSet};

/// Per-sender sliding-window replay detector.
pub struct ReplayGuard {
    window: u64,
    max_senders: usize,
    seen: FxHashMap<String, SenderWindow>,
}

struct SenderWindow {
    /// Highest accepted nonce.
    high: u64,
    /// Accepted nonces within `[high - window, high]`.
    recent: FxHashSet<u64>,
}

impl ReplayGuard {
    /// Creates a guard accepting reordering up to `window` nonces back,
    /// tracking at most `max_senders` senders (oldest evicted arbitrarily —
    /// eviction only ever *tightens* acceptance, never weakens it, because
    /// an evicted sender restarts with an empty window that still rejects
    /// nonces at or below its new high-water mark).
    pub fn new(window: u64, max_senders: usize) -> Self {
        ReplayGuard {
            window: window.max(1),
            max_senders: max_senders.max(1),
            seen: FxHashMap::default(),
        }
    }

    /// Checks and records `(sender, nonce)`. Returns `true` when the nonce
    /// is fresh (and records it), `false` on replay or stale nonce.
    pub fn accept(&mut self, sender: &str, nonce: u64) -> bool {
        if let Some(w) = self.seen.get_mut(sender) {
            if nonce > w.high {
                w.high = nonce;
                w.recent.insert(nonce);
                let floor = w.high.saturating_sub(self.window);
                w.recent.retain(|&n| n >= floor);
                return true;
            }
            let floor = w.high.saturating_sub(self.window);
            if nonce < floor || w.recent.contains(&nonce) {
                return false;
            }
            w.recent.insert(nonce);
            true
        } else {
            if self.seen.len() >= self.max_senders {
                // Evict one arbitrary sender to bound memory.
                if let Some(k) = self.seen.keys().next().cloned() {
                    self.seen.remove(&k);
                }
            }
            let mut recent = FxHashSet::default();
            recent.insert(nonce);
            self.seen.insert(
                sender.to_owned(),
                SenderWindow {
                    high: nonce,
                    recent,
                },
            );
            true
        }
    }

    /// Number of tracked senders.
    pub fn senders(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_nonces_accepted_duplicates_rejected() {
        let mut g = ReplayGuard::new(16, 10);
        assert!(g.accept("alice", 1));
        assert!(g.accept("alice", 2));
        assert!(g.accept("alice", 3));
        assert!(!g.accept("alice", 2), "replay rejected");
        assert!(!g.accept("alice", 3));
    }

    #[test]
    fn reordering_inside_window_is_fine() {
        let mut g = ReplayGuard::new(8, 10);
        assert!(g.accept("alice", 10));
        assert!(g.accept("alice", 7), "late but in window");
        assert!(!g.accept("alice", 7), "but only once");
        assert!(!g.accept("alice", 1), "below the window: stale");
    }

    #[test]
    fn senders_are_independent() {
        let mut g = ReplayGuard::new(8, 10);
        assert!(g.accept("alice", 5));
        assert!(g.accept("bob", 5), "same nonce, different sender");
        assert!(!g.accept("alice", 5));
    }

    #[test]
    fn sender_eviction_bounds_memory() {
        let mut g = ReplayGuard::new(8, 3);
        for i in 0..10 {
            assert!(g.accept(&format!("user-{i}"), 1));
        }
        assert!(g.senders() <= 3);
    }

    #[test]
    fn window_advances_with_high_water_mark() {
        let mut g = ReplayGuard::new(4, 10);
        assert!(g.accept("a", 100));
        assert!(g.accept("a", 98));
        assert!(g.accept("a", 200));
        // 98 and 100 are now far below the window floor (196).
        assert!(!g.accept("a", 100));
        assert!(!g.accept("a", 195));
        assert!(g.accept("a", 197));
    }
}
