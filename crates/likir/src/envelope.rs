//! Signed RPC envelopes and authenticated content records.

use bytes::{Bytes, BytesMut};

use dharma_types::{DharmaError, Id160, ReadBytes, Result, WireDecode, WireEncode, WriteBytes};

use crate::ca::{CaVerifier, Certificate, Identity};

/// A signed RPC envelope: certificate + nonce + opaque payload + signature.
///
/// Likir wraps every Kademlia RPC in one of these; the nonce prevents
/// replay, the certificate authenticates the sender, and the signature
/// covers `nonce ‖ payload`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedEnvelope {
    /// Sender certificate.
    pub cert: Certificate,
    /// Anti-replay nonce (unique per message).
    pub nonce: u64,
    /// The wrapped protocol message.
    pub payload: Vec<u8>,
    /// User signature over `nonce ‖ payload`.
    pub signature: Id160,
}

impl SignedEnvelope {
    /// Wraps and signs `payload`.
    pub fn seal(identity: &Identity, nonce: u64, payload: Vec<u8>) -> Self {
        let signature = identity.sign(&signed_bytes(nonce, &payload));
        SignedEnvelope {
            cert: identity.cert.clone(),
            nonce,
            payload,
            signature,
        }
    }

    /// Verifies certificate and signature, returning the payload on success.
    pub fn open(&self, verifier: &CaVerifier, now_us: u64) -> Result<&[u8]> {
        verifier.verify_cert(&self.cert, now_us)?;
        if !verifier.verify_user_sig(
            &self.cert.user_id,
            &signed_bytes(self.nonce, &self.payload),
            &self.signature,
        ) {
            return Err(DharmaError::Unauthorized(format!(
                "bad envelope signature from '{}'",
                self.cert.user_id
            )));
        }
        Ok(&self.payload)
    }
}

fn signed_bytes(nonce: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_varint(nonce);
    buf.put_bytes_field(payload);
    buf.to_vec()
}

impl WireEncode for SignedEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        self.cert.encode(buf);
        buf.put_varint(self.nonce);
        buf.put_bytes_field(&self.payload);
        buf.put_id(&self.signature);
    }
}

impl WireDecode for SignedEnvelope {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(SignedEnvelope {
            cert: Certificate::decode(buf)?,
            nonce: buf.get_varint()?,
            payload: buf.get_bytes_field()?,
            signature: buf.get_id()?,
        })
    }
}

/// An authored, signed content record — what DHARMA stores as `r̃` blocks so
/// that readers can verify who published a resource URI.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuthenticatedRecord {
    /// Author certificate.
    pub cert: Certificate,
    /// Application namespace (Likir separates applications sharing one
    /// overlay; DHARMA uses `"dharma"`).
    pub namespace: String,
    /// The content itself.
    pub content: Vec<u8>,
    /// Author signature over `namespace ‖ content`.
    pub signature: Id160,
}

impl AuthenticatedRecord {
    /// Creates and signs a record.
    pub fn sign(identity: &Identity, namespace: &str, content: Vec<u8>) -> Self {
        let signature = identity.sign(&record_bytes(namespace, &content));
        AuthenticatedRecord {
            cert: identity.cert.clone(),
            namespace: namespace.to_owned(),
            content,
            signature,
        }
    }

    /// Verifies authorship; returns the content on success.
    pub fn verify(&self, verifier: &CaVerifier, now_us: u64) -> Result<&[u8]> {
        verifier.verify_cert(&self.cert, now_us)?;
        if !verifier.verify_user_sig(
            &self.cert.user_id,
            &record_bytes(&self.namespace, &self.content),
            &self.signature,
        ) {
            return Err(DharmaError::Unauthorized(format!(
                "bad record signature from '{}'",
                self.cert.user_id
            )));
        }
        Ok(&self.content)
    }
}

fn record_bytes(namespace: &str, content: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_str(namespace);
    buf.put_bytes_field(content);
    buf.to_vec()
}

impl WireEncode for AuthenticatedRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.cert.encode(buf);
        buf.put_str(&self.namespace);
        buf.put_bytes_field(&self.content);
        buf.put_id(&self.signature);
    }
}

impl WireDecode for AuthenticatedRecord {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(AuthenticatedRecord {
            cert: Certificate::decode(buf)?,
            namespace: buf.get_str()?,
            content: buf.get_bytes_field()?,
            signature: buf.get_id()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificationAuthority;

    fn setup() -> (CertificationAuthority, Identity, CaVerifier) {
        let ca = CertificationAuthority::new(b"master");
        let alice = ca.register("alice", 0);
        let v = ca.verifier();
        (ca, alice, v)
    }

    #[test]
    fn envelope_roundtrip_and_verify() {
        let (_ca, alice, v) = setup();
        let env = SignedEnvelope::seal(&alice, 7, b"FIND_NODE ...".to_vec());
        let enc = env.encode_to_bytes();
        let dec = SignedEnvelope::decode_exact(&enc).unwrap();
        assert_eq!(dec, env);
        assert_eq!(dec.open(&v, 0).unwrap(), b"FIND_NODE ...");
    }

    #[test]
    fn tampered_envelope_rejected() {
        let (_ca, alice, v) = setup();
        let mut env = SignedEnvelope::seal(&alice, 7, b"payload".to_vec());
        env.payload = b"poisoned".to_vec();
        assert!(env.open(&v, 0).is_err());
        // Nonce tampering (replay with altered nonce) also fails.
        let mut env = SignedEnvelope::seal(&alice, 7, b"payload".to_vec());
        env.nonce = 8;
        assert!(env.open(&v, 0).is_err());
    }

    #[test]
    fn envelope_from_unregistered_identity_rejected() {
        let (_ca, alice, _) = setup();
        let other_ca = CertificationAuthority::new(b"evil");
        let v2 = other_ca.verifier();
        let env = SignedEnvelope::seal(&alice, 1, b"x".to_vec());
        assert!(env.open(&v2, 0).is_err());
    }

    #[test]
    fn record_roundtrip_and_verify() {
        let (_ca, alice, v) = setup();
        let rec = AuthenticatedRecord::sign(&alice, "dharma", b"uri://nevermind".to_vec());
        let enc = rec.encode_to_bytes();
        let dec = AuthenticatedRecord::decode_exact(&enc).unwrap();
        assert_eq!(dec.verify(&v, 0).unwrap(), b"uri://nevermind");
    }

    #[test]
    fn record_namespace_is_covered_by_signature() {
        let (_ca, alice, v) = setup();
        let mut rec = AuthenticatedRecord::sign(&alice, "dharma", b"c".to_vec());
        rec.namespace = "other-app".into();
        assert!(rec.verify(&v, 0).is_err());
    }

    #[test]
    fn stolen_record_cannot_be_reauthored() {
        let ca = CertificationAuthority::new(b"master");
        let alice = ca.register("alice", 0);
        let mallory = ca.register("mallory", 0);
        let v = ca.verifier();
        let mut rec = AuthenticatedRecord::sign(&alice, "dharma", b"content".to_vec());
        // Mallory swaps in her own (valid) certificate.
        rec.cert = mallory.cert.clone();
        assert!(rec.verify(&v, 0).is_err());
    }
}
