//! The certification authority, certificates and user identities.

use bytes::{Bytes, BytesMut};

use dharma_types::hmac::{hmac_sha1, verify_hmac_sha1};
use dharma_types::{
    node_id_for_user, DharmaError, Id160, ReadBytes, Result, WireDecode, WireEncode, WriteBytes,
};

/// A certificate binding a user identity to an overlay node id.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// The registered user identifier (e.g. an OpenID in real Likir).
    pub user_id: String,
    /// The overlay node id, always `H("likir-node" ‖ user_id)`.
    pub node_id: Id160,
    /// Expiry timestamp (µs since epoch; 0 = never, for simulations).
    pub expires_us: u64,
    /// CA signature over the three fields above.
    pub signature: Id160,
}

impl Certificate {
    fn signed_bytes(user_id: &str, node_id: &Id160, expires_us: u64) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_str(user_id);
        buf.put_id(node_id);
        buf.put_varint(expires_us);
        buf
    }
}

impl WireEncode for Certificate {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_str(&self.user_id);
        buf.put_id(&self.node_id);
        buf.put_varint(self.expires_us);
        buf.put_id(&self.signature);
    }
}

impl WireDecode for Certificate {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(Certificate {
            user_id: buf.get_str()?,
            node_id: buf.get_id()?,
            expires_us: buf.get_varint()?,
            signature: buf.get_id()?,
        })
    }
}

/// The certification authority. Owns the master secret; registration is the
/// only operation that needs it online (as in Likir, where the CA signs
/// certificates once and is offline afterwards).
pub struct CertificationAuthority {
    secret: Vec<u8>,
}

impl CertificationAuthority {
    /// Creates a CA from a master secret.
    pub fn new(secret: &[u8]) -> Self {
        CertificationAuthority {
            secret: secret.to_vec(),
        }
    }

    /// Registers a user: derives their node id and MAC key, and issues the
    /// certificate. Deterministic per `(secret, user_id, expires_us)`.
    pub fn register(&self, user_id: &str, expires_us: u64) -> Identity {
        let node_id = node_id_for_user(user_id);
        let signature = hmac_sha1(
            &self.secret,
            &Certificate::signed_bytes(user_id, &node_id, expires_us),
        );
        let cert = Certificate {
            user_id: user_id.to_owned(),
            node_id,
            expires_us,
            signature,
        };
        Identity {
            cert,
            user_key: self.user_key(user_id),
        }
    }

    /// The per-user MAC key (stands in for the user's private key).
    fn user_key(&self, user_id: &str) -> Vec<u8> {
        let mut msg = b"likir-user-key\x00".to_vec();
        msg.extend_from_slice(user_id.as_bytes());
        hmac_sha1(&self.secret, &msg).as_bytes().to_vec()
    }

    /// A verification handle (models the published CA public key).
    pub fn verifier(&self) -> CaVerifier {
        CaVerifier {
            secret: self.secret.clone(),
        }
    }
}

/// Verification capability distributed to every node.
///
/// In real Likir this is the CA's public key; here it re-derives the MAC
/// keys. Holding a `CaVerifier` lets a node *verify* certificates and
/// signatures — the simulation never uses it to forge, preserving the trust
/// model's observable behaviour.
#[derive(Clone)]
pub struct CaVerifier {
    secret: Vec<u8>,
}

impl CaVerifier {
    /// Verifies a certificate: CA signature, id binding, and expiry
    /// against `now_us`.
    pub fn verify_cert(&self, cert: &Certificate, now_us: u64) -> Result<()> {
        if cert.node_id != node_id_for_user(&cert.user_id) {
            return Err(DharmaError::Unauthorized(format!(
                "node id not derived from user id '{}'",
                cert.user_id
            )));
        }
        if cert.expires_us != 0 && cert.expires_us < now_us {
            return Err(DharmaError::Unauthorized(format!(
                "certificate for '{}' expired",
                cert.user_id
            )));
        }
        let signed = Certificate::signed_bytes(&cert.user_id, &cert.node_id, cert.expires_us);
        if !verify_hmac_sha1(&self.secret, &signed, &cert.signature) {
            return Err(DharmaError::Unauthorized(format!(
                "bad CA signature on certificate for '{}'",
                cert.user_id
            )));
        }
        Ok(())
    }

    /// Verifies a user signature over `message`.
    pub fn verify_user_sig(&self, user_id: &str, message: &[u8], sig: &Id160) -> bool {
        let key = self.user_key(user_id);
        verify_hmac_sha1(&key, message, sig)
    }

    fn user_key(&self, user_id: &str) -> Vec<u8> {
        let mut msg = b"likir-user-key\x00".to_vec();
        msg.extend_from_slice(user_id.as_bytes());
        hmac_sha1(&self.secret, &msg).as_bytes().to_vec()
    }
}

/// A registered user's identity: certificate plus signing key.
#[derive(Clone)]
pub struct Identity {
    /// The CA-issued certificate.
    pub cert: Certificate,
    user_key: Vec<u8>,
}

impl Identity {
    /// The user id.
    pub fn user_id(&self) -> &str {
        &self.cert.user_id
    }

    /// The certified overlay node id.
    pub fn node_id(&self) -> Id160 {
        self.cert.node_id
    }

    /// Signs a message with the user key.
    pub fn sign(&self, message: &[u8]) -> Id160 {
        hmac_sha1(&self.user_key, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_deterministic_and_verifiable() {
        let ca = CertificationAuthority::new(b"master");
        let alice = ca.register("alice", 0);
        let alice2 = ca.register("alice", 0);
        assert_eq!(alice.cert, alice2.cert);
        assert_eq!(alice.node_id(), node_id_for_user("alice"));
        ca.verifier().verify_cert(&alice.cert, 123).unwrap();
    }

    #[test]
    fn forged_certificate_rejected() {
        let ca = CertificationAuthority::new(b"master");
        let verifier = ca.verifier();
        let mut cert = ca.register("alice", 0).cert;
        // Claim a different node id.
        cert.node_id = node_id_for_user("mallory");
        assert!(verifier.verify_cert(&cert, 0).is_err());
        // Re-derive the id but keep the stolen signature.
        let mut cert = ca.register("alice", 0).cert;
        cert.user_id = "mallory".into();
        cert.node_id = node_id_for_user("mallory");
        assert!(verifier.verify_cert(&cert, 0).is_err());
    }

    #[test]
    fn wrong_ca_rejected() {
        let ca1 = CertificationAuthority::new(b"one");
        let ca2 = CertificationAuthority::new(b"two");
        let alice = ca1.register("alice", 0);
        assert!(ca2.verifier().verify_cert(&alice.cert, 0).is_err());
    }

    #[test]
    fn expiry_enforced() {
        let ca = CertificationAuthority::new(b"master");
        let alice = ca.register("alice", 1_000);
        let v = ca.verifier();
        v.verify_cert(&alice.cert, 999).unwrap();
        assert!(v.verify_cert(&alice.cert, 1_001).is_err());
        // 0 means never expires.
        let bob = ca.register("bob", 0);
        v.verify_cert(&bob.cert, u64::MAX).unwrap();
    }

    #[test]
    fn user_signatures_verify_and_reject() {
        let ca = CertificationAuthority::new(b"master");
        let alice = ca.register("alice", 0);
        let v = ca.verifier();
        let sig = alice.sign(b"hello");
        assert!(v.verify_user_sig("alice", b"hello", &sig));
        assert!(!v.verify_user_sig("alice", b"hullo", &sig));
        assert!(!v.verify_user_sig("bob", b"hello", &sig));
    }

    #[test]
    fn certificate_wire_roundtrip() {
        let ca = CertificationAuthority::new(b"master");
        let cert = ca.register("alice", 42).cert;
        let enc = cert.encode_to_bytes();
        let dec = Certificate::decode_exact(&enc).unwrap();
        assert_eq!(dec, cert);
    }
}
