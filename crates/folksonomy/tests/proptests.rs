//! Property tests for the folksonomy model — the invariants the paper's
//! correctness rests on.

use dharma_folksonomy::kendall::{tau_b, tau_b_reference};
use dharma_folksonomy::{ApproxPolicy, Fg, Folksonomy, ResId, TagId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary sequence of tagging events over small id spaces.
fn events() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..12, 0u32..10), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental exact evolution ≡ batch derivation from the final TRG —
    /// the central §III-B invariant.
    #[test]
    fn exact_evolution_equals_derivation(evs in events()) {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let mut rng = StdRng::seed_from_u64(0);
        for (t, r) in &evs {
            f.tag(ResId(*r), TagId(*t), &mut rng);
        }
        let derived = Fg::derive_exact(f.trg());
        prop_assert_eq!(f.fg().num_arcs(), derived.num_arcs());
        for (t1, t2, w) in f.fg().arcs() {
            prop_assert_eq!(derived.sim(t1, t2), w, "arc {:?}->{:?}", t1, t2);
        }
    }

    /// In the exact FG, arc existence is symmetric (weights may differ).
    #[test]
    fn exact_fg_arc_symmetry(evs in events()) {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let mut rng = StdRng::seed_from_u64(0);
        for (t, r) in &evs {
            f.tag(ResId(*r), TagId(*t), &mut rng);
        }
        for (t1, t2, _) in f.fg().arcs() {
            prop_assert!(f.fg().has_arc(t2, t1));
        }
    }

    /// Approximated arcs are a subset of exact arcs with weights bounded by
    /// the exact weights (Approximations A and B only ever *drop* updates).
    #[test]
    fn approx_is_conservative(evs in events(), k in 1usize..5) {
        let mut exact = Folksonomy::new(ApproxPolicy::EXACT);
        let mut approx = Folksonomy::new(ApproxPolicy::paper(k));
        let mut rng_e = StdRng::seed_from_u64(1);
        let mut rng_a = StdRng::seed_from_u64(2);
        for (t, r) in &evs {
            exact.tag(ResId(*r), TagId(*t), &mut rng_e);
            approx.tag(ResId(*r), TagId(*t), &mut rng_a);
        }
        // Identical TRGs: approximation only touches the FG.
        prop_assert!(exact.trg().same_edges(approx.trg()));
        for (t1, t2, w) in approx.fg().arcs() {
            let we = exact.fg().sim(t1, t2);
            prop_assert!(we >= w, "approx weight {} exceeds exact {}", w, we);
        }
    }

    /// The tagging outcome's accounting matches reality: the updated subset
    /// is bounded by k and by the pre-op neighborhood.
    #[test]
    fn outcome_accounting(evs in events(), k in 1usize..4) {
        let mut f = Folksonomy::new(ApproxPolicy::paper(k));
        let mut rng = StdRng::seed_from_u64(3);
        for (t, r) in &evs {
            let before = f.trg().tag_degree(ResId(*r));
            let had = f.trg().weight(TagId(*t), ResId(*r)) > 0;
            let out = f.tag(ResId(*r), TagId(*t), &mut rng);
            let expected_neighborhood = if had { before - 1 } else { before };
            prop_assert_eq!(out.neighborhood_size, expected_neighborhood);
            prop_assert!(out.updated_neighbors.len() <= k.min(expected_neighborhood));
        }
    }

    /// Fast Kendall τ-b agrees with the O(n²) oracle on tie-heavy data.
    #[test]
    fn kendall_matches_oracle(
        pairs in proptest::collection::vec((0u64..8, 0u64..8), 2..120)
    ) {
        let x: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let fast = tau_b(&x, &y);
        let slow = tau_b_reference(&x, &y);
        match (fast, slow) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b),
            (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
        }
    }

    /// τ-b is antisymmetric under order reversal on tie-free data.
    #[test]
    fn kendall_antisymmetry(xs in proptest::collection::vec(0u64..1000, 2..60)) {
        // Deduplicate to keep the input tie-free.
        let mut x = xs.clone();
        x.sort_unstable();
        x.dedup();
        prop_assume!(x.len() >= 2);
        let fwd: Vec<u64> = x.clone();
        let rev: Vec<u64> = x.iter().rev().copied().collect();
        let t1 = tau_b(&x, &fwd).unwrap();
        let t2 = tau_b(&x, &rev).unwrap();
        prop_assert!((t1 - 1.0).abs() < 1e-12);
        prop_assert!((t2 + 1.0).abs() < 1e-12);
    }
}
