//! The Tag-Resource Graph (paper §III-A).
//!
//! `TRG = (T ∪ R, E_TR)` with an edge `(t, r)` iff at least one user tagged
//! `r` with `t`, weighted by `u(t, r)` = the number of users who did. Both
//! directions are materialized (`Tags(r)` and `Res(t)`) because every paper
//! operation needs one or the other: tagging reads `Tags(r)`, search reads
//! `Res(t)`, and the `sim` definition sums over `Res(t1)`.

use dharma_types::FxHashMap;

use crate::ids::{ResId, TagId};

/// The weighted bipartite Tag-Resource Graph.
#[derive(Default, Clone, Debug)]
pub struct Trg {
    /// `tags_of[r]` = `{t → u(t, r)}`, the `Tags(r)` adjacency of §III-A.
    tags_of: Vec<FxHashMap<TagId, u32>>,
    /// `res_of[t]` = `{r → u(t, r)}`, the `Res(t)` adjacency.
    res_of: Vec<FxHashMap<ResId, u32>>,
    /// Total number of edges (unordered (t, r) pairs with u ≥ 1).
    edges: usize,
    /// Total annotation mass `Σ u(t, r)`.
    annotations: u64,
}

impl Trg {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph pre-sized for `tags` tags and `resources` resources
    /// (all isolated) — the starting state of the paper's replay simulation.
    pub fn with_capacity(tags: usize, resources: usize) -> Self {
        Trg {
            tags_of: vec![FxHashMap::default(); resources],
            res_of: vec![FxHashMap::default(); tags],
            edges: 0,
            annotations: 0,
        }
    }

    /// Ensures indices up to (and including) the given ids exist.
    pub fn ensure(&mut self, tags: usize, resources: usize) {
        if self.res_of.len() < tags {
            self.res_of.resize_with(tags, FxHashMap::default);
        }
        if self.tags_of.len() < resources {
            self.tags_of.resize_with(resources, FxHashMap::default);
        }
    }

    /// Number of tag vertices (including isolated ones).
    pub fn num_tags(&self) -> usize {
        self.res_of.len()
    }

    /// Number of resource vertices (including isolated ones).
    pub fn num_resources(&self) -> usize {
        self.tags_of.len()
    }

    /// Number of `(t, r)` edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Total annotation mass `Σ_{(t,r)} u(t, r)`.
    pub fn num_annotations(&self) -> u64 {
        self.annotations
    }

    /// The weight `u(t, r)`, 0 when the edge is absent.
    #[inline]
    pub fn weight(&self, t: TagId, r: ResId) -> u32 {
        self.tags_of
            .get(r.idx())
            .and_then(|m| m.get(&t).copied())
            .unwrap_or(0)
    }

    /// `Tags(r)` with weights. Empty iterator for unknown resources.
    pub fn tags_of(&self, r: ResId) -> impl Iterator<Item = (TagId, u32)> + '_ {
        self.tags_of
            .get(r.idx())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&t, &u)| (t, u)))
    }

    /// `Res(t)` with weights. Empty iterator for unknown tags.
    pub fn res_of(&self, t: TagId) -> impl Iterator<Item = (ResId, u32)> + '_ {
        self.res_of
            .get(t.idx())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&r, &u)| (r, u)))
    }

    /// `|Tags(r)|`.
    pub fn tag_degree(&self, r: ResId) -> usize {
        self.tags_of.get(r.idx()).map_or(0, FxHashMap::len)
    }

    /// `|Res(t)|`.
    pub fn res_degree(&self, t: TagId) -> usize {
        self.res_of.get(t.idx()).map_or(0, FxHashMap::len)
    }

    /// Increments `u(t, r)` by `n` (creating the edge if absent), growing the
    /// vertex sets if needed. Returns the previous weight. Used by dataset
    /// builders that know edge multiplicities upfront.
    pub fn add_annotations(&mut self, t: TagId, r: ResId, n: u32) -> u32 {
        if n == 0 {
            return self.weight(t, r);
        }
        self.ensure(t.idx() + 1, r.idx() + 1);
        let prev = {
            let slot = self.tags_of[r.idx()].entry(t).or_insert(0);
            let prev = *slot;
            *slot += n;
            prev
        };
        *self.res_of[t.idx()].entry(r).or_insert(0) += n;
        if prev == 0 {
            self.edges += 1;
        }
        self.annotations += u64::from(n);
        prev
    }

    /// Increments `u(t, r)` by one (creating the edge at weight 1), growing
    /// the vertex sets if needed. Returns the *previous* weight.
    pub fn add_annotation(&mut self, t: TagId, r: ResId) -> u32 {
        self.ensure(t.idx() + 1, r.idx() + 1);
        let prev = {
            let slot = self.tags_of[r.idx()].entry(t).or_insert(0);
            let prev = *slot;
            *slot += 1;
            prev
        };
        *self.res_of[t.idx()].entry(r).or_insert(0) += 1;
        if prev == 0 {
            self.edges += 1;
        }
        self.annotations += 1;
        prev
    }

    /// Iterates every edge as `(t, r, u(t, r))`, grouped by resource.
    pub fn edges(&self) -> impl Iterator<Item = (TagId, ResId, u32)> + '_ {
        self.tags_of
            .iter()
            .enumerate()
            .flat_map(|(r, m)| m.iter().map(move |(&t, &u)| (t, ResId(r as u32), u)))
    }

    /// Structural equality of the edge multiset (used to verify that a replay
    /// reconstructs the reference TRG exactly).
    pub fn same_edges(&self, other: &Trg) -> bool {
        if self.edges != other.edges || self.annotations != other.annotations {
            return false;
        }
        self.edges().all(|(t, r, u)| other.weight(t, r) == u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_updates_both_directions() {
        let mut g = Trg::new();
        let t = TagId(3);
        let r = ResId(5);
        assert_eq!(g.add_annotation(t, r), 0);
        assert_eq!(g.add_annotation(t, r), 1);
        assert_eq!(g.weight(t, r), 2);
        assert_eq!(g.tag_degree(r), 1);
        assert_eq!(g.res_degree(t), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_annotations(), 2);
        // Mirror consistency.
        let from_res: Vec<_> = g.res_of(t).collect();
        assert_eq!(from_res, vec![(r, 2)]);
    }

    #[test]
    fn vertices_grow_on_demand() {
        let mut g = Trg::new();
        g.add_annotation(TagId(10), ResId(20));
        assert_eq!(g.num_tags(), 11);
        assert_eq!(g.num_resources(), 21);
        // Isolated vertices have empty neighborhoods.
        assert_eq!(g.tag_degree(ResId(0)), 0);
        assert_eq!(g.res_degree(TagId(0)), 0);
    }

    #[test]
    fn figure1_example() {
        // Figure 1 (left): r1 tagged with t1 by 1 user and t2 by 3 users, etc.
        let mut g = Trg::new();
        let (t1, t2) = (TagId(0), TagId(1));
        let (r1, r2) = (ResId(0), ResId(1));
        g.add_annotation(t1, r1);
        for _ in 0..3 {
            g.add_annotation(t2, r1);
        }
        for _ in 0..2 {
            g.add_annotation(t2, r2);
        }
        assert_eq!(g.weight(t2, r1), 3);
        assert_eq!(g.weight(t2, r2), 2);
        assert_eq!(g.res_degree(t2), 2);
        assert_eq!(g.tag_degree(r1), 2);
    }

    #[test]
    fn same_edges_detects_differences() {
        let mut a = Trg::new();
        let mut b = Trg::new();
        a.add_annotation(TagId(0), ResId(0));
        b.add_annotation(TagId(0), ResId(0));
        assert!(a.same_edges(&b));
        b.add_annotation(TagId(0), ResId(0));
        assert!(!a.same_edges(&b));
        a.add_annotation(TagId(1), ResId(0));
        b.add_annotation(TagId(1), ResId(0));
        assert!(!a.same_edges(&b)); // annotation mass differs
    }

    #[test]
    fn edges_iterator_covers_all() {
        let mut g = Trg::new();
        g.add_annotation(TagId(0), ResId(0));
        g.add_annotation(TagId(1), ResId(0));
        g.add_annotation(TagId(0), ResId(1));
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (TagId(0), ResId(0), 1),
                (TagId(0), ResId(1), 1),
                (TagId(1), ResId(0), 1),
            ]
        );
    }
}
