//! Exact-vs-approximated graph comparison (Table III, Figures 6 and 8).
//!
//! For every tag `t` the paper compares the out-arc set of the exact FG with
//! the same set in the approximated FG:
//!
//! * **Kendall τ** and **cosine θ** over the *common* arcs — do the
//!   approximated weights preserve rank order and proportions?
//! * **recall** — what fraction of exact arcs survived the approximation?
//! * **sim1%** — of the arcs that were lost, what fraction had weight 1 in
//!   the exact graph (i.e. were vocabulary noise)?
//!
//! Table III reports mean and standard deviation of each metric over tags.
//! The computation is embarrassingly parallel per tag and is chunked over
//! `dharma-par`.

use dharma_par::ThreadPool;

use crate::fg::Fg;
use crate::ids::TagId;
use crate::kendall::{cosine, tau_b};
use crate::stats::MeanStd;

/// Per-tag comparison of exact vs approximated out-arcs.
#[derive(Clone, Debug, Default)]
pub struct TagComparison {
    /// Kendall τ-b over common arcs (`None` when undefined, e.g. < 2 common
    /// arcs or constant weights).
    pub tau: Option<f64>,
    /// Cosine similarity over common arcs.
    pub theta: Option<f64>,
    /// `|approx arcs| / |exact arcs|` (`None` when the tag has no exact arcs).
    pub recall: Option<f64>,
    /// Fraction of *missing* arcs whose exact weight is 1 (`None` when no
    /// arcs are missing).
    pub sim1: Option<f64>,
    /// Number of arcs present in both graphs.
    pub common_arcs: usize,
    /// Number of exact arcs.
    pub exact_arcs: usize,
}

/// Compares one tag's out-neighborhoods.
pub fn compare_tag(exact: &Fg, approx: &Fg, t: TagId) -> TagComparison {
    let exact_arcs: Vec<(TagId, u64)> = {
        let mut v: Vec<(TagId, u64)> = exact.neighbors(t).collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    };
    if exact_arcs.is_empty() {
        return TagComparison::default();
    }

    let mut common_exact: Vec<u64> = Vec::new();
    let mut common_approx: Vec<u64> = Vec::new();
    let mut missing = 0usize;
    let mut missing_weight_one = 0usize;
    for &(n, w_exact) in &exact_arcs {
        let w_approx = approx.sim(t, n);
        if w_approx > 0 {
            common_exact.push(w_exact);
            common_approx.push(w_approx);
        } else {
            missing += 1;
            if w_exact == 1 {
                missing_weight_one += 1;
            }
        }
    }

    TagComparison {
        tau: tau_b(&common_exact, &common_approx),
        theta: cosine(&common_exact, &common_approx),
        recall: Some(common_exact.len() as f64 / exact_arcs.len() as f64),
        sim1: if missing > 0 {
            Some(missing_weight_one as f64 / missing as f64)
        } else {
            None
        },
        common_arcs: common_exact.len(),
        exact_arcs: exact_arcs.len(),
    }
}

/// Aggregated comparison over all tags — the numbers of Table III.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphComparison {
    /// Kendall τ-b aggregated over tags where it is defined.
    pub tau: MeanStd,
    /// Cosine θ aggregated over tags where it is defined.
    pub theta: MeanStd,
    /// Recall aggregated over tags with at least one exact arc.
    pub recall: MeanStd,
    /// sim1% aggregated over tags with at least one missing arc.
    pub sim1: MeanStd,
    /// Tags with at least one exact out-arc (the comparison population).
    pub tags_with_arcs: u64,
}

impl GraphComparison {
    fn absorb(mut self, c: &TagComparison) -> Self {
        if c.exact_arcs > 0 {
            self.tags_with_arcs += 1;
        }
        if let Some(v) = c.tau {
            self.tau.push(v);
        }
        if let Some(v) = c.theta {
            self.theta.push(v);
        }
        if let Some(v) = c.recall {
            self.recall.push(v);
        }
        if let Some(v) = c.sim1 {
            self.sim1.push(v);
        }
        self
    }

    fn merge(self, other: GraphComparison) -> GraphComparison {
        GraphComparison {
            tau: self.tau.merge(other.tau),
            theta: self.theta.merge(other.theta),
            recall: self.recall.merge(other.recall),
            sim1: self.sim1.merge(other.sim1),
            tags_with_arcs: self.tags_with_arcs + other.tags_with_arcs,
        }
    }
}

/// Compares the approximated graph against the exact one over every tag,
/// in parallel. Only tags with ≥ `min_arcs` exact out-arcs participate
/// (the paper's rank metrics are meaningless on singleton neighborhoods;
/// pass 1 to include everything).
pub fn compare_graphs(
    pool: &ThreadPool,
    exact: &Fg,
    approx: &Fg,
    min_arcs: usize,
) -> GraphComparison {
    let tags: Vec<u32> = (0..exact.num_tags() as u32).collect();
    let chunk = dharma_par::chunk_size(tags.len(), pool.threads(), 64);
    dharma_par::par_map_reduce(
        pool,
        &tags,
        chunk,
        GraphComparison::default(),
        |&t| {
            let t = TagId(t);
            if exact.out_degree(t) < min_arcs {
                GraphComparison::default()
            } else {
                GraphComparison::default().absorb(&compare_tag(exact, approx, t))
            }
        },
        GraphComparison::merge,
    )
}

/// `(exact out-degree, approx out-degree)` pairs for every tag with at least
/// one exact arc — the scatter data of Figure 6.
pub fn degree_pairs(exact: &Fg, approx: &Fg) -> Vec<(u64, u64)> {
    (0..exact.num_tags() as u32)
        .map(TagId)
        .filter(|&t| exact.out_degree(t) > 0)
        .map(|t| (exact.out_degree(t) as u64, approx.out_degree(t) as u64))
        .collect()
}

/// `(exact weight, approx weight)` pairs for arcs of the exact graph —
/// the scatter data of Figure 8. `include_missing` controls whether arcs
/// absent from the approximated graph appear (with weight 0).
pub fn weight_pairs(exact: &Fg, approx: &Fg, include_missing: bool) -> Vec<(u64, u64)> {
    exact
        .arcs()
        .filter_map(|(t1, t2, w)| {
            let wa = approx.sim(t1, t2);
            if wa > 0 || include_missing {
                Some((w, wa))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fg_from(arcs: &[(u32, u32, u64)]) -> Fg {
        let mut fg = Fg::new();
        for &(a, b, w) in arcs {
            fg.add_sim(TagId(a), TagId(b), w);
        }
        fg
    }

    #[test]
    fn identical_graphs_are_perfect() {
        let exact = fg_from(&[(0, 1, 5), (0, 2, 3), (0, 3, 1), (1, 0, 2), (1, 2, 9)]);
        let c = compare_tag(&exact, &exact, TagId(0));
        assert!((c.tau.unwrap() - 1.0).abs() < 1e-12);
        assert!((c.theta.unwrap() - 1.0).abs() < 1e-12);
        assert!((c.recall.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(c.sim1, None, "nothing missing");
        assert_eq!(c.common_arcs, 3);
    }

    #[test]
    fn missing_arcs_lower_recall_and_fill_sim1() {
        let exact = fg_from(&[(0, 1, 5), (0, 2, 1), (0, 3, 1), (0, 4, 7)]);
        // Approximation kept only the two heavy arcs.
        let approx = fg_from(&[(0, 1, 3), (0, 4, 4)]);
        let c = compare_tag(&exact, &approx, TagId(0));
        assert!((c.recall.unwrap() - 0.5).abs() < 1e-12);
        // Both missing arcs had weight 1.
        assert!((c.sim1.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(c.common_arcs, 2);
    }

    #[test]
    fn scaled_weights_keep_theta_high() {
        let exact = fg_from(&[(0, 1, 10), (0, 2, 20), (0, 3, 30)]);
        let approx = fg_from(&[(0, 1, 1), (0, 2, 2), (0, 3, 3)]);
        let c = compare_tag(&exact, &approx, TagId(0));
        assert!((c.theta.unwrap() - 1.0).abs() < 1e-12);
        assert!((c.tau.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tag_yields_default() {
        let exact = fg_from(&[(0, 1, 5)]);
        let approx = Fg::new();
        let c = compare_tag(&exact, &approx, TagId(7));
        assert_eq!(c.exact_arcs, 0);
        assert_eq!(c.recall, None);
    }

    #[test]
    fn aggregate_over_graph() {
        let pool = ThreadPool::new(2);
        let exact = fg_from(&[
            (0, 1, 5),
            (0, 2, 3),
            (1, 0, 5),
            (1, 2, 2),
            (2, 0, 3),
            (2, 1, 2),
        ]);
        let agg = compare_graphs(&pool, &exact, &exact, 1);
        assert_eq!(agg.tags_with_arcs, 3);
        assert!((agg.recall.mean() - 1.0).abs() < 1e-12);
        assert!((agg.theta.mean() - 1.0).abs() < 1e-12);
        assert_eq!(agg.sim1.count(), 0);
    }

    #[test]
    fn figure_data_extraction() {
        let exact = fg_from(&[(0, 1, 5), (0, 2, 1), (1, 0, 4)]);
        let approx = fg_from(&[(0, 1, 2), (1, 0, 4)]);
        let degrees = degree_pairs(&exact, &approx);
        assert!(degrees.contains(&(2, 1)) && degrees.contains(&(1, 1)));
        let common = weight_pairs(&exact, &approx, false);
        assert_eq!(common.len(), 2);
        let all = weight_pairs(&exact, &approx, true);
        assert_eq!(all.len(), 3);
        assert!(all.contains(&(1, 0)));
    }
}
