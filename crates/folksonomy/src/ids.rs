//! Dense integer identifiers for tags and resources.
//!
//! The model works on `u32` indices (cache-friendly, and at Last.fm scale —
//! 1.4 M resources, 285 k tags — well within range); [`Interner`] maps
//! human-readable names to indices and back at the system boundary.

use dharma_types::FxHashMap;

/// Index of a tag in the model (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TagId(pub u32);

/// Index of a resource in the model (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ResId(pub u32);

impl TagId {
    /// The index as usize, for direct vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// A deterministic tie-break key with no correlation to the id value
    /// (Knuth multiplicative hash). Weight-sorted candidate lists use this
    /// instead of the raw id: synthetic datasets allocate ids in popularity
    /// order, and breaking ties by raw id would systematically favor hub
    /// tags, biasing the search simulations.
    #[inline]
    pub fn tie_key(self) -> u32 {
        self.0.wrapping_mul(2654435761)
    }
}

impl ResId {
    /// The index as usize, for direct vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between names and dense indices.
///
/// ```
/// let mut interner = dharma_folksonomy::Interner::new();
/// let a = interner.intern("rock");
/// let b = interner.intern("rock");
/// assert_eq!(a, b);
/// assert_eq!(interner.name(a), "rock");
/// ```
#[derive(Default, Clone, Debug)]
pub struct Interner {
    names: Vec<String>,
    by_name: FxHashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the index of `name`, inserting it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The name behind an index. Panics on out-of-range indices.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("rock");
        let b = i.intern("pop");
        assert_ne!(a, b);
        assert_eq!(i.intern("rock"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), "rock");
        assert_eq!(i.get("pop"), Some(b));
        assert_eq!(i.get("jazz"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for n in 0..100 {
            assert_eq!(i.intern(&format!("t{n}")), n);
        }
        let collected: Vec<u32> = i.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }
}
