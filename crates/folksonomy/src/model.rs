//! Coupled TRG + FG maintenance — exact (§III-B) and approximated (§IV-B).
//!
//! The paper defines two mutating operations:
//!
//! * **Resource insertion** — a user inserts a new resource `r` with tag set
//!   `T_r = {t_1 … t_m}`: every `u(t_i, r)` is set to 1 and every ordered
//!   pair of distinct tags in `T_r` gains `sim += 1`.
//! * **Tag insertion** — a user tags an existing resource `r` with `t`:
//!   `u(t, r)` is incremented; for every other tag `τ ∈ Tags(r)`,
//!   `sim(τ, t) += 1`; and *only if `t` was not yet on `r`*,
//!   `sim(t, τ) += u(τ, r)` (because `r` just entered `Res(t)`).
//!
//! The DHT mapping makes the naive tag insertion cost `4 + |Tags(r)|`
//! lookups and racy, so §IV-B introduces:
//!
//! * **Approximation A** — only a uniform random subset of `Tags(r)` of size
//!   ≤ `k` receives the updates;
//! * **Approximation B** — the `sim(t, τ) += u(τ, r)` bulk increment becomes
//!   `+= 1`, which is exactly "append one token" on the DHT and therefore
//!   commutes under concurrent writers.
//!
//! See DESIGN.md §3 for how the ambiguous wording of Approximation B is
//! resolved; the literal reading is kept as [`BPolicy::LiteralB`] for the
//! ablation study.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fg::Fg;
use crate::ids::{ResId, TagId};
use crate::trg::Trg;

/// How the `sim(t, τ)` reverse-arc increment behaves when `t` is newly
/// attached to `r` (paper §IV-B, Approximation B).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BPolicy {
    /// Exact model: `sim(t, τ) += u(τ, r)`.
    Exact,
    /// Approximation B as implemented on the DHT: `sim(t, τ) += 1`
    /// unconditionally (a single one-bit token append; race-free).
    #[default]
    UnitIncrement,
    /// The paper's literal sentence: `+= 1` only when the arc `(t, τ)` did
    /// not exist yet; `+= u(τ, r)` when it did. Not race-free; kept for the
    /// ablation comparison.
    LiteralB,
}

/// Approximation knobs for tagging operations.
///
/// Approximation A bounds only the **reverse** `(τ, t)` arc updates — each
/// of those lives in a different `τ̂` block and costs one overlay lookup.
/// The **forward** `(t, τ)` arcs all live in `t`'s own `t̂` block, which is
/// one lookup regardless of entry count, so they are never subsetted
/// (that is how Table I reaches `4 + k`).
#[derive(Clone, Copy, Debug)]
pub struct ApproxPolicy {
    /// Approximation A: maximum number of reverse `(τ, t)` updates per
    /// tagging operation (`None` = update all, i.e. A disabled).
    pub connection_k: Option<usize>,
    /// Approximation B policy for the reverse arcs.
    pub b_policy: BPolicy,
}

impl ApproxPolicy {
    /// The exact model: no approximation at all.
    pub const EXACT: ApproxPolicy = ApproxPolicy {
        connection_k: None,
        b_policy: BPolicy::Exact,
    };

    /// The paper's deployed configuration: Approximations A (with the given
    /// `k`) and B together.
    pub fn paper(k: usize) -> ApproxPolicy {
        ApproxPolicy {
            connection_k: Some(k),
            b_policy: BPolicy::UnitIncrement,
        }
    }

    /// Approximation A only (exact reverse-arc increments).
    pub fn a_only(k: usize) -> ApproxPolicy {
        ApproxPolicy {
            connection_k: Some(k),
            b_policy: BPolicy::Exact,
        }
    }

    /// Approximation B only (all of `Tags(r)` updated).
    pub fn b_only() -> ApproxPolicy {
        ApproxPolicy {
            connection_k: None,
            b_policy: BPolicy::UnitIncrement,
        }
    }

    /// True when this policy deviates from the exact model.
    pub fn is_approximate(&self) -> bool {
        self.connection_k.is_some() || self.b_policy != BPolicy::Exact
    }
}

/// What a tagging operation did — returned so callers (e.g. the DHT client)
/// can account lookup costs without recomputing state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggingOutcome {
    /// `u(t, r)` before the operation (0 ⇒ `t` was newly attached to `r`).
    pub previous_weight: u32,
    /// The subset of `Tags(r)` whose arcs were updated (all of them in the
    /// exact model; ≤ k under Approximation A).
    pub updated_neighbors: Vec<TagId>,
    /// Size of `Tags(r)` (excluding `t`) before the operation.
    pub neighborhood_size: usize,
}

/// The coupled Tag-Resource Graph and Folksonomy Graph with the paper's
/// maintenance operations.
///
/// ```
/// use dharma_folksonomy::{ApproxPolicy, Folksonomy, ResId, TagId};
/// let mut f = Folksonomy::new(ApproxPolicy::EXACT);
/// f.insert_resource(ResId(0), &[TagId(0), TagId(1)]);
/// assert_eq!(f.fg().sim(TagId(0), TagId(1)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Folksonomy {
    trg: Trg,
    fg: Fg,
    policy: ApproxPolicy,
}

impl Folksonomy {
    /// An empty folksonomy evolving under `policy`.
    pub fn new(policy: ApproxPolicy) -> Self {
        Folksonomy {
            trg: Trg::new(),
            fg: Fg::new(),
            policy,
        }
    }

    /// Pre-sized variant (the replay simulation knows all vertices upfront).
    pub fn with_capacity(policy: ApproxPolicy, tags: usize, resources: usize) -> Self {
        Folksonomy {
            trg: Trg::with_capacity(tags, resources),
            fg: Fg::with_capacity(tags),
            policy,
        }
    }

    /// The Tag-Resource Graph.
    pub fn trg(&self) -> &Trg {
        &self.trg
    }

    /// The Folksonomy Graph.
    pub fn fg(&self) -> &Fg {
        &self.fg
    }

    /// The policy this instance evolves under.
    pub fn policy(&self) -> ApproxPolicy {
        self.policy
    }

    /// Consumes the model, returning its graphs.
    pub fn into_graphs(self) -> (Trg, Fg) {
        (self.trg, self.fg)
    }

    /// **Resource insertion** (§III-B.1): inserts `r` tagged with `tags`.
    ///
    /// Every tag gets `u = 1` and every ordered pair of distinct tags gains
    /// `sim += 1`. Duplicate tags in the input are ignored. The paper does
    /// not approximate this operation (Table I: `2 + 2m` lookups in both
    /// rows), so it is identical under every policy.
    pub fn insert_resource(&mut self, r: ResId, tags: &[TagId]) {
        debug_assert_eq!(
            self.trg.tag_degree(r),
            0,
            "resource insertion requires a fresh resource"
        );
        let mut unique: Vec<TagId> = tags.to_vec();
        unique.sort_unstable();
        unique.dedup();
        for &t in &unique {
            self.trg.add_annotation(t, r);
        }
        for &ti in &unique {
            for &tj in &unique {
                if ti != tj {
                    self.fg.add_sim(ti, tj, 1);
                }
            }
        }
    }

    /// **Tag insertion** (§III-B.2): one user tags `r` with `t`, updating the
    /// FG according to the instance's [`ApproxPolicy`].
    ///
    /// Randomness (for Approximation A's subset) is drawn from `rng`; under
    /// the exact policy `rng` is never touched.
    pub fn tag<R: Rng + ?Sized>(&mut self, r: ResId, t: TagId, rng: &mut R) -> TaggingOutcome {
        // Snapshot Tags(r) \ {t} *before* mutating the TRG.
        let mut neighbors: Vec<(TagId, u32)> =
            self.trg.tags_of(r).filter(|&(tau, _)| tau != t).collect();
        let neighborhood_size = neighbors.len();

        let previous_weight = self.trg.add_annotation(t, r);
        let newly_attached = previous_weight == 0;

        // Arcs (t, τ) — the t̂ block of t. On the DHT this is a single block
        // update whatever its entry count, so Approximation A does NOT
        // subset it; only Approximation B changes the increment. It fires
        // only when r just entered Res(t).
        if newly_attached {
            for &(tau, u_tau_r) in &neighbors {
                let delta = match self.policy.b_policy {
                    BPolicy::Exact => u64::from(u_tau_r),
                    BPolicy::UnitIncrement => 1,
                    BPolicy::LiteralB => {
                        if self.fg.has_arc(t, tau) {
                            u64::from(u_tau_r)
                        } else {
                            1
                        }
                    }
                };
                self.fg.add_sim(t, tau, delta);
            }
        }

        // Arcs (τ, t) — one τ̂ block update *per neighbor*, which is the
        // `|Tags(r)|` term of Table I. Approximation A caps these at k
        // random neighbors.
        if let Some(k) = self.policy.connection_k {
            if neighbors.len() > k {
                neighbors.partial_shuffle(rng, k);
                neighbors.truncate(k);
            }
        }
        for &(tau, _) in &neighbors {
            self.fg.add_sim(tau, t, 1);
        }

        TaggingOutcome {
            previous_weight,
            updated_neighbors: neighbors.into_iter().map(|(tau, _)| tau).collect(),
            neighborhood_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn figure2a_resource_insertion() {
        // Figure 2(a): r3 labeled with {t1, t2, t3} joins a system where
        // sim(t1, t2) = 2 already; afterwards sim(t1, t2) = 3 and the new
        // pairs (t1,t3), (t2,t3) start at 1.
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let (t1, t2, t3) = (TagId(0), TagId(1), TagId(2));
        // Seed: r1 with {t1}, r2 with {t1, t2} twice-ish to get sim(t1,t2)=2.
        f.insert_resource(ResId(0), &[t1, t2]);
        f.insert_resource(ResId(1), &[t1, t2]);
        assert_eq!(f.fg().sim(t1, t2), 2);
        f.insert_resource(ResId(2), &[t1, t2, t3]);
        assert_eq!(f.fg().sim(t1, t2), 3);
        assert_eq!(f.fg().sim(t2, t1), 3);
        assert_eq!(f.fg().sim(t1, t3), 1);
        assert_eq!(f.fg().sim(t3, t1), 1);
        assert_eq!(f.fg().sim(t2, t3), 1);
        assert_eq!(f.fg().sim(t3, t2), 1);
    }

    #[test]
    fn figure2b_tag_insertion() {
        // Figure 2(b): r2 carries t1 (u=3) and t2 (u=2); attaching new tag t3
        // yields sim(t1,t3) += 1, sim(t2,t3) += 1, sim(t3,t1) += u(t1,r2)=3,
        // sim(t3,t2) += u(t2,r2)=2.
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let (t1, t2, t3) = (TagId(0), TagId(1), TagId(2));
        let r2 = ResId(0);
        let mut rg = rng();
        f.insert_resource(r2, &[t1, t2]);
        // Raise u(t1, r2) to 3 and u(t2, r2) to 2 with repeat taggings.
        f.tag(r2, t1, &mut rg);
        f.tag(r2, t1, &mut rg);
        f.tag(r2, t2, &mut rg);
        assert_eq!(f.trg().weight(t1, r2), 3);
        assert_eq!(f.trg().weight(t2, r2), 2);
        let sim_t1t2_before = f.fg().sim(t1, t2);
        let out = f.tag(r2, t3, &mut rg);
        assert_eq!(out.previous_weight, 0);
        assert_eq!(out.neighborhood_size, 2);
        assert_eq!(f.fg().sim(t1, t3), 1);
        assert_eq!(f.fg().sim(t2, t3), 1);
        assert_eq!(f.fg().sim(t3, t1), 3);
        assert_eq!(f.fg().sim(t3, t2), 2);
        // Unrelated arcs untouched.
        assert_eq!(f.fg().sim(t1, t2), sim_t1t2_before);
    }

    #[test]
    fn repeat_tagging_leaves_reverse_arcs_unchanged() {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let (t1, t2) = (TagId(0), TagId(1));
        let r = ResId(0);
        let mut rg = rng();
        f.insert_resource(r, &[t1, t2]);
        let before_rev = f.fg().sim(t1, t2);
        // t1 is already on r: sim(t2, t1) += 1 but sim(t1, t2) unchanged.
        let out = f.tag(r, t1, &mut rg);
        assert_eq!(out.previous_weight, 1);
        assert_eq!(f.fg().sim(t2, t1), 2);
        assert_eq!(f.fg().sim(t1, t2), before_rev);
    }

    #[test]
    fn exact_evolution_matches_derived_fg() {
        // Evolving the FG incrementally under the exact policy must agree
        // with deriving it from the final TRG — the central model invariant.
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let mut rg = rng();
        f.insert_resource(ResId(0), &[TagId(0), TagId(1), TagId(2)]);
        f.insert_resource(ResId(1), &[TagId(1), TagId(3)]);
        for _ in 0..5 {
            f.tag(ResId(0), TagId(3), &mut rg);
            f.tag(ResId(1), TagId(0), &mut rg);
            f.tag(ResId(0), TagId(1), &mut rg);
        }
        f.tag(ResId(1), TagId(4), &mut rg);
        let derived = Fg::derive_exact(f.trg());
        for t1 in 0..5u32 {
            for t2 in 0..5u32 {
                if t1 != t2 {
                    assert_eq!(
                        f.fg().sim(TagId(t1), TagId(t2)),
                        derived.sim(TagId(t1), TagId(t2)),
                        "sim({t1},{t2})"
                    );
                }
            }
        }
    }

    #[test]
    fn approximation_a_bounds_updates() {
        let mut f = Folksonomy::new(ApproxPolicy::a_only(2));
        let mut rg = rng();
        let tags: Vec<TagId> = (0..10).map(TagId).collect();
        f.insert_resource(ResId(0), &tags);
        let out = f.tag(ResId(0), TagId(99), &mut rg);
        assert_eq!(out.neighborhood_size, 10);
        assert_eq!(out.updated_neighbors.len(), 2, "k = 2 caps the subset");
        // Forward arcs (t, τ) live in one t̂ block: all 10 created.
        let fwd = (0..10)
            .filter(|&i| f.fg().sim(TagId(99), TagId(i)) > 0)
            .count();
        assert_eq!(fwd, 10);
        // Reverse arcs (τ, t) are one τ̂ lookup each: capped at k = 2.
        let rev = (0..10)
            .filter(|&i| f.fg().sim(TagId(i), TagId(99)) > 0)
            .count();
        assert_eq!(rev, 2);
    }

    #[test]
    fn approximation_a_noop_when_under_k() {
        let mut f = Folksonomy::new(ApproxPolicy::paper(100));
        let mut rg = rng();
        f.insert_resource(ResId(0), &[TagId(0), TagId(1)]);
        let out = f.tag(ResId(0), TagId(2), &mut rg);
        assert_eq!(out.updated_neighbors.len(), 2, "|Tags(r)| ≤ k: all updated");
    }

    #[test]
    fn approximation_b_unit_increment() {
        let mut f = Folksonomy::new(ApproxPolicy::b_only());
        let (t1, t2) = (TagId(0), TagId(1));
        let r = ResId(0);
        let mut rg = rng();
        f.insert_resource(r, &[t1]);
        f.tag(r, t1, &mut rg);
        f.tag(r, t1, &mut rg); // u(t1, r) = 3
        let out = f.tag(r, t2, &mut rg);
        assert_eq!(out.previous_weight, 0);
        // Exact would give sim(t2, t1) = 3; Approximation B gives 1.
        assert_eq!(f.fg().sim(t2, t1), 1);
        assert_eq!(f.fg().sim(t1, t2), 1);
    }

    #[test]
    fn literal_b_uses_bulk_increment_on_existing_arcs() {
        let mut f = Folksonomy::new(ApproxPolicy {
            connection_k: None,
            b_policy: BPolicy::LiteralB,
        });
        let (t1, t2) = (TagId(0), TagId(1));
        let (r1, r2) = (ResId(0), ResId(1));
        let mut rg = rng();
        // Create arc (t2, t1) via r1 first.
        f.insert_resource(r1, &[t1, t2]);
        assert!(f.fg().has_arc(t2, t1));
        // Raise u(t1, r2) to 3, then attach t2: the arc exists, so the
        // literal policy applies the exact bulk increment.
        f.insert_resource(r2, &[t1]);
        f.tag(r2, t1, &mut rg);
        f.tag(r2, t1, &mut rg);
        let before = f.fg().sim(t2, t1);
        f.tag(r2, t2, &mut rg);
        assert_eq!(f.fg().sim(t2, t1), before + 3);
    }

    #[test]
    fn duplicate_tags_in_insert_are_deduped() {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        f.insert_resource(ResId(0), &[TagId(0), TagId(0), TagId(1)]);
        assert_eq!(f.trg().weight(TagId(0), ResId(0)), 1);
        assert_eq!(f.fg().sim(TagId(0), TagId(1)), 1);
    }

    #[test]
    fn first_tag_on_resource_touches_no_arcs() {
        let mut f = Folksonomy::new(ApproxPolicy::paper(1));
        let mut rg = rng();
        let out = f.tag(ResId(0), TagId(0), &mut rg);
        assert_eq!(out.neighborhood_size, 0);
        assert_eq!(f.fg().num_arcs(), 0);
    }
}
