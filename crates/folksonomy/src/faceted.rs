//! Faceted search within the Folksonomy Graph (paper §III-C, §V-C).
//!
//! The user explores the tag space along a path `t₀, t₁, …, tₙ` where each
//! `tᵢ` is drawn from the currently displayed candidate set, narrowing
//!
//! ```text
//! Tᵢ = Tᵢ₋₁ ∩ N_FG(tᵢ)        Rᵢ = Rᵢ₋₁ ∩ Res(tᵢ)
//! ```
//!
//! Already-chosen tags are excluded, so `|Tᵢ| < |Tᵢ₋₁|` and convergence is
//! guaranteed. Mirroring the DHT deployment, the neighbor set fetched at
//! each step is capped to the **top `display_cap` by `sim`** (index-side
//! filtering within one UDP payload — §V-A); the intersection with the
//! running candidate set happens locally, exactly as in §IV-A.
//!
//! The search stops when `|Tᵢ| ≤ tag_stop` (default 1) or
//! `|Rᵢ| ≤ resource_stop` (default 10) — the thresholds of §V-C.

use rand::Rng;

use dharma_types::FxHashMap;

use crate::fg::Fg;
use crate::ids::{ResId, TagId};
use crate::trg::Trg;

/// Tag-selection strategy for simulated searches (§V-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Always pick the candidate **most** similar to the current tag.
    First,
    /// Always pick the candidate **least** similar to the current tag.
    Last,
    /// Pick uniformly at random among displayed candidates.
    Random,
}

/// Why a search ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// `|Rᵢ|` fell to the resource threshold — the result set is small
    /// enough to display.
    ResourcesNarrowed,
    /// `|Tᵢ|` fell to the tag threshold — no further refinement possible.
    TagsExhausted,
    /// The safety bound on path length was hit.
    MaxSteps,
}

/// Configuration of the faceted-search process.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Index-side filtering cap on each fetched neighbor set (`None` = no
    /// cap). The paper uses `Some(100)`.
    pub display_cap: Option<usize>,
    /// Stop once `|Rᵢ| ≤ resource_stop` (paper: 10).
    pub resource_stop: usize,
    /// Stop once `|Tᵢ| ≤ tag_stop` (paper: 1).
    pub tag_stop: usize,
    /// Hard bound on the number of selections (safety net; the process
    /// provably converges in `O(|T₀|)` steps anyway).
    pub max_steps: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            display_cap: Some(100),
            resource_stop: 10,
            tag_stop: 1,
            max_steps: 10_000,
        }
    }
}

/// Result of one simulated faceted search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The selected tags, in order (`path[0]` is the seed).
    pub path: Vec<TagId>,
    /// `|Tᵢ|` after the last selection.
    pub final_tags: usize,
    /// `|Rᵢ|` after the last selection.
    pub final_resources: usize,
    /// Why the search stopped.
    pub stop: StopReason,
}

impl SearchOutcome {
    /// Path length in selections (the paper's "search steps").
    pub fn steps(&self) -> usize {
        self.path.len()
    }
}

/// A frozen, search-optimized view of a folksonomy.
///
/// `Res(t)` lists are pre-sorted so each narrowing step is a linear merge
/// instead of hash probing — search simulations run thousands of walks over
/// an immutable graph, so the one-off build cost amortizes immediately.
pub struct FacetedSearch<'g> {
    fg: &'g Fg,
    res_sorted: Vec<Vec<ResId>>,
}

impl<'g> FacetedSearch<'g> {
    /// Builds the search view for a (frozen) TRG + FG pair.
    pub fn new(trg: &Trg, fg: &'g Fg) -> Self {
        let mut res_sorted: Vec<Vec<ResId>> = Vec::with_capacity(trg.num_tags());
        for t in 0..trg.num_tags() as u32 {
            let mut v: Vec<ResId> = trg.res_of(TagId(t)).map(|(r, _)| r).collect();
            v.sort_unstable();
            res_sorted.push(v);
        }
        FacetedSearch { fg, res_sorted }
    }

    /// `|Res(t)|` in the frozen view.
    pub fn res_count(&self, t: TagId) -> usize {
        self.res_sorted.get(t.idx()).map_or(0, Vec::len)
    }

    /// The neighbor set fetched for `t`, after index-side filtering:
    /// top `display_cap` by descending `sim(t, ·)` (ties by tag id).
    fn fetch_neighbors(&self, t: TagId, cfg: &SearchConfig) -> Vec<(TagId, u64)> {
        match cfg.display_cap {
            Some(cap) => self.fg.top_neighbors(t, cap),
            None => {
                let mut v: Vec<(TagId, u64)> = self.fg.neighbors(t).collect();
                v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.tie_key().cmp(&b.0.tie_key())));
                v
            }
        }
    }

    /// Runs one search from seed `t0` under the given strategy.
    ///
    /// `rng` is only consulted by [`Strategy::Random`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        t0: TagId,
        strategy: Strategy,
        cfg: &SearchConfig,
        rng: &mut R,
    ) -> SearchOutcome {
        let mut path = vec![t0];

        // Step 0: T₀ = (capped) N_FG(t₀), R₀ = Res(t₀).
        let mut candidates = self.fetch_neighbors(t0, cfg);
        let mut resources: Vec<ResId> = self.res_sorted.get(t0.idx()).cloned().unwrap_or_default();

        loop {
            if resources.len() <= cfg.resource_stop {
                return SearchOutcome {
                    final_tags: candidates.len(),
                    final_resources: resources.len(),
                    path,
                    stop: StopReason::ResourcesNarrowed,
                };
            }
            if candidates.len() <= cfg.tag_stop {
                return SearchOutcome {
                    final_tags: candidates.len(),
                    final_resources: resources.len(),
                    path,
                    stop: StopReason::TagsExhausted,
                };
            }
            if path.len() >= cfg.max_steps {
                return SearchOutcome {
                    final_tags: candidates.len(),
                    final_resources: resources.len(),
                    path,
                    stop: StopReason::MaxSteps,
                };
            }

            // Select the next tag among the displayed candidates.
            // `candidates` is sorted by weight desc then id asc, so First is
            // the head and Last the tail (min weight, largest id tie-break is
            // fine — any deterministic tie rule works).
            let next_idx = match strategy {
                Strategy::First => 0,
                Strategy::Last => candidates.len() - 1,
                Strategy::Random => rng.gen_range(0..candidates.len()),
            };
            let (next, _) = candidates[next_idx];
            path.push(next);

            // Narrow: Tᵢ = Tᵢ₋₁ ∩ (capped) N_FG(next) \ chosen,
            //          Rᵢ = Rᵢ₋₁ ∩ Res(next).
            let fetched = self.fetch_neighbors(next, cfg);
            let fetched_map: FxHashMap<TagId, u64> = fetched.into_iter().collect();
            let mut narrowed: Vec<(TagId, u64)> = candidates
                .iter()
                .filter(|(t, _)| *t != next)
                .filter_map(|(t, _)| fetched_map.get(t).map(|&w| (*t, w)))
                .collect();
            // Re-rank by similarity to the *new* current tag.
            narrowed.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.tie_key().cmp(&b.0.tie_key())));
            candidates = narrowed;

            resources = intersect_sorted(
                &resources,
                self.res_sorted.get(next.idx()).map_or(&[], Vec::as_slice),
            );
        }
    }
}

/// Intersects two sorted, deduplicated id slices. Uses a galloping probe
/// when one side is much smaller (the running `Rᵢ` shrinks fast while
/// `Res(t)` of popular tags stays huge).
fn intersect_sorted(a: &[ResId], b: &[ResId]) -> Vec<ResId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(small.len());
    if large.len() / small.len() >= 16 {
        // Galloping: binary-search each small element in the large slice.
        let mut lo = 0usize;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(pos) => {
                    out.push(x);
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        // Linear merge.
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ApproxPolicy, Folksonomy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small folksonomy with an obvious hierarchy:
    /// "music" on everything, "rock"/"jazz" split it, leaf tags narrow
    /// further.
    fn build() -> Folksonomy {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        let music = TagId(0);
        let rock = TagId(1);
        let jazz = TagId(2);
        let metal = TagId(3);
        let bebop = TagId(4);
        let mut next = 0u32;
        let mut add = |f: &mut Folksonomy, tags: &[TagId], n: usize| {
            for _ in 0..n {
                f.insert_resource(ResId(next), tags);
                next += 1;
            }
        };
        add(&mut f, &[music, rock, metal], 30);
        add(&mut f, &[music, rock], 40);
        add(&mut f, &[music, jazz, bebop], 20);
        add(&mut f, &[music, jazz], 25);
        add(&mut f, &[music], 10);
        f
    }

    #[test]
    fn narrowing_is_strictly_monotone() {
        let f = build();
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let cfg = SearchConfig {
            resource_stop: 0,
            ..SearchConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let out = idx.run(TagId(0), Strategy::First, &cfg, &mut rng);
        // |T| strictly decreases, so the path is bounded by |T₀| + 1.
        assert!(out.steps() <= 5);
        assert!(out.final_tags <= 1 || out.final_resources == 0);
    }

    #[test]
    fn first_strategy_follows_strongest_arc() {
        let f = build();
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let mut rng = StdRng::seed_from_u64(1);
        let out = idx.run(
            TagId(0),
            Strategy::First,
            &SearchConfig::default(),
            &mut rng,
        );
        // Strongest neighbor of "music" is "rock" (70 resources).
        assert_eq!(out.path[1], TagId(1));
    }

    #[test]
    fn resource_threshold_stops_search() {
        let f = build();
        let idx = FacetedSearch::new(f.trg(), f.fg());
        // "music" has 125 resources; selecting "rock" narrows to 70 ≤ 80,
        // which trips the resource threshold before the tag set empties.
        let cfg = SearchConfig {
            resource_stop: 80,
            ..SearchConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let out = idx.run(TagId(0), Strategy::First, &cfg, &mut rng);
        assert_eq!(out.stop, StopReason::ResourcesNarrowed);
        assert!(out.final_resources <= 80);
        assert_eq!(out.steps(), 2);
    }

    #[test]
    fn isolated_seed_terminates_immediately() {
        let mut f = build();
        let mut rng = StdRng::seed_from_u64(1);
        // A tag on a single resource with no co-tags.
        f.tag(ResId(999), TagId(77), &mut rng);
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let out = idx.run(
            TagId(77),
            Strategy::Random,
            &SearchConfig::default(),
            &mut rng,
        );
        assert_eq!(out.steps(), 1);
        assert_eq!(out.stop, StopReason::ResourcesNarrowed);
    }

    #[test]
    fn chosen_tags_never_reappear() {
        let f = build();
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let cfg = SearchConfig {
            resource_stop: 0,
            tag_stop: 0,
            ..SearchConfig::default()
        };
        for seed in 0..5u32 {
            for strat in [Strategy::First, Strategy::Last, Strategy::Random] {
                let mut rng = StdRng::seed_from_u64(u64::from(seed));
                let out = idx.run(TagId(seed), strat, &cfg, &mut rng);
                let mut seen = std::collections::HashSet::new();
                for t in &out.path {
                    assert!(seen.insert(*t), "tag {t:?} repeated in path");
                }
            }
        }
    }

    #[test]
    fn display_cap_limits_candidates() {
        let mut f = Folksonomy::new(ApproxPolicy::EXACT);
        // One resource with 50 tags: NFG(t0) has 49 entries.
        let tags: Vec<TagId> = (0..50).map(TagId).collect();
        f.insert_resource(ResId(0), &tags);
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let cfg = SearchConfig {
            display_cap: Some(5),
            resource_stop: 0,
            ..SearchConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = idx.run(TagId(0), Strategy::Random, &cfg, &mut rng);
        // T₀ is capped to 5, path can't exceed 6 selections.
        assert!(out.steps() <= 6, "got {}", out.steps());
    }

    #[test]
    fn intersect_sorted_paths() {
        let a: Vec<ResId> = [1u32, 3, 5, 7, 9].iter().map(|&x| ResId(x)).collect();
        let b: Vec<ResId> = [3u32, 4, 5, 9, 11].iter().map(|&x| ResId(x)).collect();
        let got = intersect_sorted(&a, &b);
        assert_eq!(got, vec![ResId(3), ResId(5), ResId(9)]);
        // Galloping path: small vs very large.
        let large: Vec<ResId> = (0..1000).map(ResId).collect();
        let small: Vec<ResId> = [0u32, 500, 999, 1001].iter().map(|&x| ResId(x)).collect();
        let got = intersect_sorted(&small, &large);
        assert_eq!(got, vec![ResId(0), ResId(500), ResId(999)]);
        assert_eq!(intersect_sorted(&[], &large), vec![]);
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let f = build();
        let idx = FacetedSearch::new(f.trg(), f.fg());
        let cfg = SearchConfig::default();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            idx.run(TagId(0), Strategy::Random, &cfg, &mut rng).path
        };
        assert_eq!(run(7), run(7));
    }
}
