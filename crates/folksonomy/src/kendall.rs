//! Kendall rank correlation (τ-b) in `O(n log n)`.
//!
//! Table III of the paper compares, per tag, the ranking of out-arc weights
//! in the exact FG against the approximated FG. Arc weights carry *many*
//! ties (most weights are 1–3), so the tie-corrected τ-b variant is the
//! meaningful one:
//!
//! ```text
//! τ_b = (P − Q) / √((n₀ − n₁)(n₀ − n₂))
//! ```
//!
//! with `n₀ = n(n−1)/2`, `n₁`/`n₂` the tied-pair counts in each input and
//! `P − Q` the concordant-minus-discordant pair count. The implementation is
//! Knight's algorithm: sort by `(x, y)`, then count discordant pairs as
//! strict inversions of `y` with a merge sort — `O(n log n)` instead of the
//! `O(n²)` all-pairs scan (which is kept as a test oracle).

/// Computes Kendall τ-b between two paired slices.
///
/// Returns `None` when fewer than two observations exist or when either
/// input is constant (τ-b is undefined: zero variance).
pub fn tau_b(x: &[u64], y: &[u64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "paired inputs must have equal length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let n0 = pairs(n as u64);

    // Sort index pairs by (x, y).
    let mut xy: Vec<(u64, u64)> = x.iter().copied().zip(y.iter().copied()).collect();
    xy.sort_unstable();

    // n1: pairs tied in x; n3: pairs tied in both.
    let mut n1 = 0u64;
    let mut n3 = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && xy[j].0 == xy[i].0 {
            j += 1;
        }
        n1 += pairs((j - i) as u64);
        // Inside an equal-x run, entries are sorted by y: count equal-(x,y) runs.
        let mut a = i;
        while a < j {
            let mut b = a + 1;
            while b < j && xy[b].1 == xy[a].1 {
                b += 1;
            }
            n3 += pairs((b - a) as u64);
            a = b;
        }
        i = j;
    }

    // n2: pairs tied in y.
    let mut ys: Vec<u64> = y.to_vec();
    ys.sort_unstable();
    let mut n2 = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && ys[j] == ys[i] {
            j += 1;
        }
        n2 += pairs((j - i) as u64);
        i = j;
    }

    if n0 == n1 || n0 == n2 {
        return None; // one of the inputs is constant
    }

    // Discordant pairs = strict inversions of the y sequence (x-ties are
    // sorted by y, so they contribute no inversions and no concordance).
    let mut seq: Vec<u64> = xy.iter().map(|&(_, yv)| yv).collect();
    let mut scratch = vec![0u64; n];
    let discordant = count_inversions(&mut seq, &mut scratch);

    let p_minus_q = n0 as i128 - n1 as i128 - n2 as i128 + n3 as i128 - 2 * discordant as i128;
    let denom = ((n0 - n1) as f64).sqrt() * ((n0 - n2) as f64).sqrt();
    Some(p_minus_q as f64 / denom)
}

/// `O(n²)` reference implementation (test oracle).
pub fn tau_b_reference(x: &[u64], y: &[u64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let (mut conc, mut disc, mut tx, mut ty) = (0i64, 0i64, 0u64, 0u64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i].cmp(&x[j]);
            let dy = y[i].cmp(&y[j]);
            use std::cmp::Ordering::*;
            match (dx, dy) {
                (Equal, Equal) => {
                    tx += 1;
                    ty += 1;
                }
                (Equal, _) => tx += 1,
                (_, Equal) => ty += 1,
                (a, b) if a == b => conc += 1,
                _ => disc += 1,
            }
        }
    }
    let n0 = pairs(n as u64);
    if tx == n0 || ty == n0 {
        return None;
    }
    let denom = ((n0 - tx) as f64).sqrt() * ((n0 - ty) as f64).sqrt();
    Some((conc - disc) as f64 / denom)
}

#[inline]
fn pairs(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Counts strict inversions (`i < j` with `a[i] > a[j]`) while merge-sorting
/// `a` in place. `scratch` must be the same length as `a`.
fn count_inversions(a: &mut [u64], scratch: &mut [u64]) -> u64 {
    let n = a.len();
    if n < 2 {
        return 0;
    }
    // Bottom-up merge sort avoids recursion on ~100k-arc neighborhoods.
    let mut inversions = 0u64;
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            inversions += merge_count(&a[lo..hi], mid - lo, &mut scratch[lo..hi]);
            a[lo..hi].copy_from_slice(&scratch[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

/// Merges the two sorted halves of `src` (split at `mid`) into `dst`,
/// returning the number of strict inversions across the split.
fn merge_count(src: &[u64], mid: usize, dst: &mut [u64]) -> u64 {
    let (left, right) = src.split_at(mid);
    let mut inversions = 0u64;
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if right[j] < left[i] {
            // right[j] precedes every remaining left element: one strict
            // inversion per remaining left element.
            inversions += (left.len() - i) as u64;
            dst[k] = right[j];
            j += 1;
        } else {
            dst[k] = left[i];
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        dst[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        dst[k] = right[j];
        j += 1;
        k += 1;
    }
    inversions
}

/// Cosine similarity between two paired weight vectors (the paper's θ).
///
/// Returns `None` when either vector has zero norm.
pub fn cosine(x: &[u64], y: &[u64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "paired inputs must have equal length");
    let mut dot = 0f64;
    let mut nx = 0f64;
    let mut ny = 0f64;
    for (&a, &b) in x.iter().zip(y) {
        let (a, b) = (a as f64, b as f64);
        dot += a * b;
        nx += a * a;
        ny += b * b;
    }
    if nx == 0.0 || ny == 0.0 {
        return None;
    }
    Some(dot / (nx.sqrt() * ny.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let x = [1u64, 2, 3, 4, 5];
        let y = [10u64, 20, 30, 40, 50];
        assert!((tau_b(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let x = [1u64, 2, 3, 4, 5];
        let y = [50u64, 40, 30, 20, 10];
        assert!((tau_b(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_undefined() {
        assert_eq!(tau_b(&[1, 1, 1], &[1, 2, 3]), None);
        assert_eq!(tau_b(&[1, 2, 3], &[7, 7, 7]), None);
        assert_eq!(tau_b(&[1], &[2]), None);
        assert_eq!(tau_b(&[], &[]), None);
    }

    #[test]
    fn ties_match_reference() {
        let x = [1u64, 1, 2, 2, 3, 3, 3, 10];
        let y = [2u64, 1, 2, 5, 5, 1, 3, 9];
        let fast = tau_b(&x, &y).unwrap();
        let slow = tau_b_reference(&x, &y).unwrap();
        assert!((fast - slow).abs() < 1e-12, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn known_scipy_value() {
        // scipy.stats.kendalltau([12,2,1,12,2],[1,4,7,1,0]) = -0.4714045...
        let x = [12u64, 2, 1, 12, 2];
        let y = [1u64, 4, 7, 1, 0];
        let t = tau_b(&x, &y).unwrap();
        assert!((t - (-0.47140452079103173)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn inversion_counting() {
        let mut a = [5u64, 4, 3, 2, 1];
        let mut s = [0u64; 5];
        assert_eq!(count_inversions(&mut a, &mut s), 10);
        assert_eq!(a, [1, 2, 3, 4, 5]);

        let mut b = [1u64, 2, 3];
        let mut s = [0u64; 3];
        assert_eq!(count_inversions(&mut b, &mut s), 0);

        // Equal elements are not inversions.
        let mut c = [2u64, 2, 2, 1];
        let mut s = [0u64; 4];
        assert_eq!(count_inversions(&mut c, &mut s), 3);
    }

    #[test]
    fn cosine_known_values() {
        // Perfectly scaled vectors → 1 (the paper's example).
        let t = cosine(&[1, 2, 3], &[100, 200, 300]).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        // Orthogonal-ish.
        let t = cosine(&[1, 0], &[0, 1]).unwrap();
        assert!(t.abs() < 1e-12);
        assert_eq!(cosine(&[0, 0], &[1, 2]), None);
    }

    #[test]
    fn large_input_agreement_with_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let x: Vec<u64> = (0..500).map(|_| rng.gen_range(0..20)).collect();
        let y: Vec<u64> = (0..500).map(|_| rng.gen_range(0..20)).collect();
        let fast = tau_b(&x, &y).unwrap();
        let slow = tau_b_reference(&x, &y).unwrap();
        assert!((fast - slow).abs() < 1e-10);
    }
}
