//! The Folksonomy Graph (paper §III-A).
//!
//! `FG = (T, E_F)` with a (directed) arc `(t1, t2)` iff
//! `sim(t1, t2) = Σ_{r ∈ Res(t1)} u(t2, r) ≥ 1`. Arc existence is symmetric
//! by construction (`sim(t1,t2) ≠ 0 ⇔ sim(t2,t1) ≠ 0` in the exact model)
//! but the two weights generally differ, so the graph stores both directions
//! explicitly — exactly like the paper's "bidirectional arcs with two
//! weights" (Figure 1).

use dharma_types::FxHashMap;

use crate::ids::TagId;
use crate::trg::Trg;

/// The directed, weighted tag-similarity graph.
#[derive(Default, Clone, Debug)]
pub struct Fg {
    /// `out[t]` = `{t' → sim(t, t')}`, i.e. the `t̂` block of §IV-A.
    out: Vec<FxHashMap<TagId, u64>>,
    /// Number of directed arcs with weight ≥ 1.
    arcs: usize,
}

impl Fg {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph pre-sized for `tags` tag vertices.
    pub fn with_capacity(tags: usize) -> Self {
        Fg {
            out: vec![FxHashMap::default(); tags],
            arcs: 0,
        }
    }

    /// Ensures vertices `0..tags` exist.
    pub fn ensure(&mut self, tags: usize) {
        if self.out.len() < tags {
            self.out.resize_with(tags, FxHashMap::default);
        }
    }

    /// Number of tag vertices (including isolated ones).
    pub fn num_tags(&self) -> usize {
        self.out.len()
    }

    /// Number of directed arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs
    }

    /// `sim(t1, t2)`, 0 when the arc is absent.
    #[inline]
    pub fn sim(&self, t1: TagId, t2: TagId) -> u64 {
        self.out
            .get(t1.idx())
            .and_then(|m| m.get(&t2).copied())
            .unwrap_or(0)
    }

    /// `N_FG(t)`: the out-neighborhood with weights.
    pub fn neighbors(&self, t: TagId) -> impl Iterator<Item = (TagId, u64)> + '_ {
        self.out
            .get(t.idx())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&n, &w)| (n, w)))
    }

    /// `|N_FG(t)|` (out-degree).
    pub fn out_degree(&self, t: TagId) -> usize {
        self.out.get(t.idx()).map_or(0, FxHashMap::len)
    }

    /// Adds `delta` to `sim(t1, t2)` (creating the arc if absent), growing
    /// the vertex set if needed. Returns the previous weight.
    pub fn add_sim(&mut self, t1: TagId, t2: TagId, delta: u64) -> u64 {
        debug_assert_ne!(t1, t2, "self-arcs are not part of the model");
        if delta == 0 {
            return self.sim(t1, t2);
        }
        let need = t1.idx().max(t2.idx()) + 1;
        self.ensure(need);
        let slot = self.out[t1.idx()].entry(t2).or_insert(0);
        let prev = *slot;
        *slot += delta;
        if prev == 0 {
            self.arcs += 1;
        }
        prev
    }

    /// True if the arc `(t1, t2)` exists with weight ≥ 1.
    #[inline]
    pub fn has_arc(&self, t1: TagId, t2: TagId) -> bool {
        self.sim(t1, t2) > 0
    }

    /// Iterates all arcs as `(t1, t2, sim(t1, t2))`.
    pub fn arcs(&self) -> impl Iterator<Item = (TagId, TagId, u64)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(t1, m)| m.iter().map(move |(&t2, &w)| (TagId(t1 as u32), t2, w)))
    }

    /// The top-`n` out-neighbors of `t` by descending weight (ties broken by
    /// a popularity-neutral deterministic key — see [`TagId::tie_key`]).
    /// This mirrors the index-side filtering a DHT node applies before
    /// answering a `GET t̂` within one UDP payload (§V-A).
    pub fn top_neighbors(&self, t: TagId, n: usize) -> Vec<(TagId, u64)> {
        let mut all: Vec<(TagId, u64)> = self.neighbors(t).collect();
        let ord = |a: &(TagId, u64), b: &(TagId, u64)| {
            b.1.cmp(&a.1).then(a.0.tie_key().cmp(&b.0.tie_key()))
        };
        if all.len() > n {
            // Partial selection first: O(d) average instead of O(d log d).
            all.select_nth_unstable_by(n - 1, ord);
            all.truncate(n);
        }
        all.sort_unstable_by(ord);
        all
    }

    /// Derives the **exact** folksonomy graph of a TRG from the definition
    /// `sim(t1, t2) = Σ_{r ∈ Res(t1)} u(t2, r)`.
    ///
    /// Cost is `Σ_r |Tags(r)|²`, the same aggregation the paper performs on
    /// the Last.fm snapshot. Resources are the outer loop so each `Tags(r)`
    /// neighborhood is enumerated once.
    pub fn derive_exact(trg: &Trg) -> Fg {
        let mut fg = Fg::with_capacity(trg.num_tags());
        for r_idx in 0..trg.num_resources() {
            let r = crate::ids::ResId(r_idx as u32);
            let tags: Vec<(TagId, u32)> = trg.tags_of(r).collect();
            for &(t1, _) in &tags {
                for &(t2, u2) in &tags {
                    if t1 != t2 {
                        fg.add_sim(t1, t2, u64::from(u2));
                    }
                }
            }
        }
        fg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ResId;

    /// Builds the Figure 1 example: two resources, both tagged with t1 and
    /// t2 (r1: 1×t1, 3×t2 — r2: 4×t1, 2×t2), plus r3 with t2 and t3.
    fn figure1_trg() -> Trg {
        let mut g = Trg::new();
        let (t1, t2, t3) = (TagId(0), TagId(1), TagId(2));
        let (r1, r2, r3) = (ResId(0), ResId(1), ResId(2));
        for _ in 0..1 {
            g.add_annotation(t1, r1);
        }
        for _ in 0..3 {
            g.add_annotation(t2, r1);
        }
        for _ in 0..4 {
            g.add_annotation(t1, r2);
        }
        for _ in 0..2 {
            g.add_annotation(t2, r2);
        }
        for _ in 0..2 {
            g.add_annotation(t2, r3);
        }
        for _ in 0..6 {
            g.add_annotation(t3, r3);
        }
        g
    }

    #[test]
    fn derive_matches_definition() {
        // Paper example: sim(t1, t2) = 3 + 2 = 5 and sim(t2, t1) = 1 + 4 = 5?
        // In Figure 1 the weights differ because resource sets differ; here:
        // Res(t1) = {r1, r2} so sim(t1,t2) = u(t2,r1) + u(t2,r2) = 3 + 2 = 5.
        // Res(t2) = {r1, r2, r3} so sim(t2,t1) = 1 + 4 + 0 = 5... and
        // sim(t2,t3) = u(t3,r3) = 6, sim(t3,t2) = u(t2,r3) = 2.
        let trg = figure1_trg();
        let fg = Fg::derive_exact(&trg);
        let (t1, t2, t3) = (TagId(0), TagId(1), TagId(2));
        assert_eq!(fg.sim(t1, t2), 5);
        assert_eq!(fg.sim(t2, t1), 5);
        assert_eq!(fg.sim(t2, t3), 6);
        assert_eq!(fg.sim(t3, t2), 2);
        assert_eq!(fg.sim(t1, t3), 0);
        assert_eq!(fg.sim(t3, t1), 0);
    }

    #[test]
    fn arc_existence_is_symmetric_in_exact_model() {
        let trg = figure1_trg();
        let fg = Fg::derive_exact(&trg);
        for (a, b, _) in fg.arcs() {
            assert!(
                fg.has_arc(b, a),
                "({a:?},{b:?}) present but reverse missing"
            );
        }
    }

    #[test]
    fn add_sim_creates_then_increments() {
        let mut fg = Fg::new();
        assert_eq!(fg.add_sim(TagId(0), TagId(1), 3), 0);
        assert_eq!(fg.add_sim(TagId(0), TagId(1), 2), 3);
        assert_eq!(fg.sim(TagId(0), TagId(1)), 5);
        assert_eq!(fg.sim(TagId(1), TagId(0)), 0); // directed
        assert_eq!(fg.num_arcs(), 1);
    }

    #[test]
    fn top_neighbors_orders_by_weight_then_id() {
        let mut fg = Fg::new();
        let t = TagId(0);
        fg.add_sim(t, TagId(1), 5);
        fg.add_sim(t, TagId(2), 9);
        fg.add_sim(t, TagId(3), 5);
        fg.add_sim(t, TagId(4), 1);
        let top = fg.top_neighbors(t, 3);
        assert_eq!(top[0], (TagId(2), 9), "heaviest first");
        // The two weight-5 entries follow in tie_key order.
        let mut tied: Vec<TagId> = top[1..].iter().map(|&(t, _)| t).collect();
        tied.sort_unstable();
        assert_eq!(tied, vec![TagId(1), TagId(3)]);
        assert_eq!(fg.top_neighbors(t, 100).len(), 4);
        assert_eq!(fg.top_neighbors(TagId(99), 5), vec![]);
    }

    #[test]
    fn zero_delta_is_a_noop() {
        let mut fg = Fg::new();
        fg.add_sim(TagId(0), TagId(1), 0);
        assert_eq!(fg.num_arcs(), 0);
        assert!(!fg.has_arc(TagId(0), TagId(1)));
    }
}
