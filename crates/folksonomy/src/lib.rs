//! The DHARMA tagging-system model (paper §III).
//!
//! A collaborative tagging system is modelled as two graphs obtained by
//! aggregating the `(user, resource, tag)` tripartite hypergraph across the
//! user dimension:
//!
//! * the **Tag-Resource Graph** ([`Trg`]) — a weighted bipartite graph where
//!   `u(t, r)` counts how many users tagged resource `r` with tag `t`;
//! * the **Folksonomy Graph** ([`Fg`]) — a directed weighted graph over tags
//!   with `sim(t1, t2) = Σ_{r ∈ Res(t1)} u(t2, r)`: how often resources
//!   carrying `t1` also carry `t2`.
//!
//! [`Folksonomy`] couples the two and implements the paper's maintenance
//! operations (§III-B) — *resource insertion* and *tag insertion* — in both
//! their **exact** form and the **approximated** form of §IV-B
//! (Approximation A: bound FG updates per tagging by the connection
//! parameter `k`; Approximation B: unit increments instead of `u(τ, r)`).
//!
//! [`faceted`] implements the faceted-search narrowing process of §III-C,
//! and [`compare`]/[`kendall`] the graph-quality metrics of the evaluation
//! (§V-B): Kendall τ-b, cosine similarity, recall and `sim1%`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod faceted;
pub mod fg;
pub mod ids;
pub mod kendall;
pub mod model;
pub mod stats;
pub mod trg;

pub use compare::{compare_graphs, GraphComparison, TagComparison};
pub use faceted::{FacetedSearch, SearchConfig, SearchOutcome, Strategy};
pub use fg::Fg;
pub use ids::{Interner, ResId, TagId};
pub use model::{ApproxPolicy, BPolicy, Folksonomy, TaggingOutcome};
pub use stats::{cdf_points, DegreeStats};
pub use trg::Trg;
