//! Summary statistics and CDFs for graph degree distributions
//! (Table II and Figure 5 of the paper).

/// Mean / standard deviation / max / count of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (the paper reports σ over the full
    /// snapshot, not a sample estimate).
    pub std: f64,
    /// Maximum observed value.
    pub max: u64,
    /// Number of observations.
    pub count: usize,
}

impl DegreeStats {
    /// Computes stats over an iterator of sizes.
    pub fn from_sizes<I: IntoIterator<Item = u64>>(sizes: I) -> DegreeStats {
        let mut count = 0usize;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        let mut max = 0u64;
        for s in sizes {
            count += 1;
            let f = s as f64;
            sum += f;
            sum_sq += f * f;
            max = max.max(s);
        }
        if count == 0 {
            return DegreeStats {
                mean: 0.0,
                std: 0.0,
                max: 0,
                count: 0,
            };
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        DegreeStats {
            mean,
            std: var.sqrt(),
            max,
            count,
        }
    }
}

/// Welford-style accumulator for mean/σ of f64 observations (used for the
/// metric aggregations of Table III and the path-length stats of Table IV).
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(mut self, other: MeanStd) -> MeanStd {
        if other.n == 0 {
            return self;
        }
        if self.n == 0 {
            return other;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 when fewer than 2 observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0).sqrt()
        }
    }
}

/// Empirical CDF of a set of sizes: returns `(value, P[X ≤ value])` points,
/// one per distinct value, suitable for the log-x CDF plot of Figure 5.
pub fn cdf_points(mut sizes: Vec<u64>) -> Vec<(u64, f64)> {
    if sizes.is_empty() {
        return Vec::new();
    }
    sizes.sort_unstable();
    let n = sizes.len() as f64;
    let mut out: Vec<(u64, f64)> = Vec::new();
    let mut seen = 0usize;
    let mut i = 0usize;
    while i < sizes.len() {
        let v = sizes[i];
        let mut j = i;
        while j < sizes.len() && sizes[j] == v {
            j += 1;
        }
        seen += j - i;
        out.push((v, seen as f64 / n));
        i = j;
    }
    out
}

/// Median of a slice (averaging the two middle elements for even lengths).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs in medians"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_basic() {
        let s = DegreeStats::from_sizes([2u64, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12); // classic population-σ example
        assert_eq!(s.max, 9);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn degree_stats_empty() {
        let s = DegreeStats::from_sizes(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn mean_std_matches_direct_computation() {
        let xs = [1.0f64, 2.0, 3.5, 7.25, 11.0];
        let mut acc = MeanStd::new();
        for x in xs {
            acc.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.std() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_std_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i) as f64 * 0.37).collect();
        let mut whole = MeanStd::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = MeanStd::new();
        let mut b = MeanStd::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        let merged = a.merge(b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.std() - whole.std()).abs() < 1e-9);
        // Merging with empty is identity.
        let id = MeanStd::new().merge(whole);
        assert!((id.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pts = cdf_points(vec![5, 1, 1, 2, 9, 9, 9]);
        assert_eq!(pts.first().unwrap().0, 1);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        // P[X ≤ 1] = 2/7.
        assert!((pts[0].1 - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
