//! The DHARMA client: tagging primitives over the DHT (paper §IV).
//!
//! A [`DharmaClient`] is bound to one overlay node (its *home node*) and
//! drives the simulated network synchronously: each overlay lookup is
//! issued, the simulation is run until the operation completes, and the
//! client accounts one lookup on its [`OpCost`] receipt. This mirrors the
//! deployment model of the paper, where the tagging application sits on a
//! Likir node and performs blocking PUT/GET primitives.
//!
//! The **naive vs approximated** tagging split of §IV-B is a client-side
//! policy ([`ApproxPolicy`]): the DHT neither knows nor cares — which is the
//! point, since Approximation A only *bounds how many `τ̂` blocks the client
//! updates* and Approximation B only *changes the increment it appends*.

use dharma_folksonomy::{ApproxPolicy, BPolicy};
use dharma_kademlia::{KadOutput, KademliaNode, StoredEntry};
use dharma_likir::{AuthenticatedRecord, Identity};
use dharma_net::SimNet;
use dharma_types::{block_key, BlockType, DharmaError, FxHashMap, Id160, Result, VersionStamp};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cost::OpCost;

/// Client configuration.
///
/// Marked `#[non_exhaustive]`: construct one with
/// [`DharmaConfig::default`] or [`DharmaConfig::builder`] and adjust
/// fields from there — new client knobs then stop being breaking struct
/// literal changes for downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct DharmaConfig {
    /// Approximation policy for tagging operations.
    pub policy: ApproxPolicy,
    /// Index-side filtering limit for search-step `GET t̂` (paper: 100).
    pub search_top_n: u32,
    /// Likir application namespace used when signing URI records.
    pub namespace: String,
    /// Client-side RNG seed (Approximation A subset selection).
    pub seed: u64,
    /// Safety cap on simulator events per blocking operation.
    pub max_events_per_op: u64,
    /// How many times a timed-out **idempotent** operation (GET, blob
    /// PUT) is reissued before the error surfaces. An overlay op can die
    /// with its coordinator (the home node crashes mid-lookup and its RPC
    /// timers die with it) or starve when every replica times out; under
    /// churn a fresh attempt usually routes around the corpses. APPENDs
    /// are **never** retried: replicas that applied the append before the
    /// timeout would double-count its tokens on a reissue. Each attempt
    /// is accounted as one more lookup on the receipt. 0 restores
    /// fail-fast.
    pub op_retries: u32,
}

impl Default for DharmaConfig {
    fn default() -> Self {
        DharmaConfig {
            policy: ApproxPolicy::paper(1),
            search_top_n: 100,
            namespace: "dharma".into(),
            seed: 0,
            max_events_per_op: 5_000_000,
            op_retries: 2,
        }
    }
}

impl DharmaConfig {
    /// A range-validated builder starting from [`DharmaConfig::default()`].
    pub fn builder() -> DharmaConfigBuilder {
        DharmaConfigBuilder {
            cfg: DharmaConfig::default(),
        }
    }
}

/// Builder for [`DharmaConfig`] with validated ranges ([`DharmaConfig::builder()`]).
#[derive(Clone, Debug)]
pub struct DharmaConfigBuilder {
    cfg: DharmaConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, v: $ty) -> Self {
            self.cfg.$name = v;
            self
        }
    };
}

impl DharmaConfigBuilder {
    setter!(
        /// See [`DharmaConfig::policy`].
        policy: ApproxPolicy
    );
    setter!(
        /// See [`DharmaConfig::search_top_n`].
        search_top_n: u32
    );
    setter!(
        /// See [`DharmaConfig::seed`].
        seed: u64
    );
    setter!(
        /// See [`DharmaConfig::max_events_per_op`].
        max_events_per_op: u64
    );
    setter!(
        /// See [`DharmaConfig::op_retries`].
        op_retries: u32
    );

    /// See [`DharmaConfig::namespace`].
    pub fn namespace(mut self, v: impl Into<String>) -> Self {
        self.cfg.namespace = v.into();
        self
    }

    /// Validates ranges and produces the config. Errors name the bad knob.
    pub fn build(self) -> std::result::Result<DharmaConfig, String> {
        let c = &self.cfg;
        if c.namespace.is_empty() {
            return Err("namespace must be non-empty (it scopes record signatures)".into());
        }
        if c.max_events_per_op == 0 {
            return Err("max_events_per_op must be >= 1 (0 would time out every op)".into());
        }
        Ok(self.cfg)
    }
}

/// The consistency level a [`DharmaClient::get`] read is served under.
///
/// [`Eventual`](Consistency::Eventual) is the classic read path — byte-
/// identical behaviour to a plain overlay GET. The session levels enforce
/// a *floor*: the read's served version must not fall below what this
/// client session has already observed ([`SessionToken`]); a below-floor
/// serve triggers one authoritative re-read
/// ([`KademliaNode::get_fresh`]), and if even that stays below the floor
/// the read surfaces [`DharmaError::StaleRead`] instead of silently going
/// back in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// No session floor: caches serve freely, staleness is bounded only
    /// by the overlay's freshness machinery (TTL, gossip, push).
    #[default]
    Eventual,
    /// Reads reflect every write this client session has completed: a
    /// GET of a key the session wrote never serves a pre-write view.
    ReadYourWrites,
    /// Successive reads of a key never move backwards within this
    /// session, even across cache hits on different serving nodes.
    MonotonicReads,
}

/// The per-session consistency floor: the highest origin stamp this
/// client has observed for each key, through its own writes *and* reads.
///
/// One combined floor serves both session levels — it is the pointwise
/// maximum of what read-your-writes (own writes) and monotonic reads
/// (own reads) each require, so enforcing it yields both guarantees at
/// once, never a wrong serve. Bounded only by the number of distinct
/// keys the session touches; [`SessionToken::reset`] starts a new
/// session.
#[derive(Clone, Debug, Default)]
pub struct SessionToken {
    floors: FxHashMap<Id160, VersionStamp>,
}

impl SessionToken {
    /// The floor for `key`: the highest stamp observed, or the
    /// never-written [`VersionStamp::ZERO`] when the session has not
    /// touched the key (every serve passes a zero floor).
    pub fn floor(&self, key: &Id160) -> VersionStamp {
        self.floors.get(key).copied().unwrap_or(VersionStamp::ZERO)
    }

    /// Folds an observed stamp into the floor (monotone: only raises).
    pub fn observe(&mut self, key: Id160, stamp: VersionStamp) {
        let slot = self.floors.entry(key).or_insert(VersionStamp::ZERO);
        *slot = (*slot).max(stamp);
    }

    /// Number of keys this session has observed.
    pub fn tracked(&self) -> usize {
        self.floors.len()
    }

    /// Forgets every observation — the next read starts a fresh session.
    pub fn reset(&mut self) {
        self.floors.clear();
    }
}

/// What a tagging operation reports beyond its cost.
#[derive(Clone, Debug)]
pub struct TagReceipt {
    /// Lookup/message cost.
    pub cost: OpCost,
    /// `|Tags(r)|` as observed from the fetched `r̄` block (excluding `t`).
    pub neighborhood: usize,
    /// How many `τ̂` blocks were updated (≤ k under Approximation A).
    pub updated: usize,
    /// Whether `t` was newly attached to `r`.
    pub newly_attached: bool,
}

/// A fetched block: entries (name → weight) plus truncation flag.
#[derive(Clone, Debug, Default)]
pub struct BlockView {
    /// Entries of the weighted set.
    pub entries: Vec<(String, u64)>,
    /// True if the server cut the list (top-n filtering or MTU).
    pub truncated: bool,
    /// Blob content, if the block stores one.
    pub blob: Option<Vec<u8>>,
}

/// The DHARMA tagging client.
pub struct DharmaClient {
    home: dharma_net::NodeAddr,
    identity: Identity,
    cfg: DharmaConfig,
    rng: StdRng,
    /// Completions that arrived while waiting for other ops.
    stash: FxHashMap<u64, KadOutput>,
    /// Session-consistency floor: highest stamp observed per key, fed by
    /// every write receipt and every served read of this client.
    session: SessionToken,
}

impl DharmaClient {
    /// Binds a client to its home overlay node.
    pub fn new(home: dharma_net::NodeAddr, identity: Identity, cfg: DharmaConfig) -> Self {
        let seed = cfg.seed;
        DharmaClient {
            home,
            identity,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            stash: FxHashMap::default(),
            session: SessionToken::default(),
        }
    }

    /// The configured approximation policy.
    pub fn policy(&self) -> ApproxPolicy {
        self.cfg.policy
    }

    /// The home node's transport address.
    pub fn home(&self) -> dharma_net::NodeAddr {
        self.home
    }

    /// The session-consistency floor accumulated so far (every write
    /// receipt and served read raises it).
    pub fn session(&self) -> &SessionToken {
        &self.session
    }

    /// Starts a fresh session: forgets every observed stamp, so the next
    /// session-level read passes vacuously.
    pub fn reset_session(&mut self) {
        self.session.reset();
    }

    /// Merges another session's floors into this one — the causal-handoff
    /// path. A client resuming someone's session (same user, different
    /// home node or process) imports the token; its session-level reads
    /// then reflect everything the imported session observed.
    pub fn import_session(&mut self, token: &SessionToken) {
        // dharma-lint: allow(D3): observe() folds a max per key; order-independent
        for (key, stamp) in &token.floors {
            self.session.observe(*key, *stamp);
        }
    }

    /// A consistency-levelled block read: fetch the weighted set at `key`
    /// (index-side filtered to `top_n` heaviest entries when `top_n > 0`).
    ///
    /// [`Consistency::Eventual`] is exactly the read path every other
    /// client operation uses. The session levels check the served version
    /// against this session's floor ([`SessionToken`]); a below-floor
    /// serve escalates once to an authoritative re-read (cache-bypassing,
    /// one more accounted lookup), and surfaces
    /// [`DharmaError::StaleRead`] if the overlay still cannot meet the
    /// floor. Reads and writes by this client raise the floor as a side
    /// effect, whatever level they run at.
    pub fn get(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: Id160,
        top_n: u32,
        consistency: Consistency,
    ) -> Result<(Option<BlockView>, OpCost)> {
        let (served, cost) = self.get_stamped(net, key, top_n, consistency)?;
        Ok((served.map(|(view, _)| view), cost))
    }

    /// [`DharmaClient::get`], but the served view keeps its origin stamp.
    ///
    /// The stamp is what the session floor is made of — callers that hand
    /// a view to another process (or audit the consistency contract, as
    /// the session proptests do) need it alongside the payload: a
    /// successful session-level read always satisfies
    /// `stamp >= self.session().floor(&key)` as observed before the call.
    pub fn get_stamped(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: Id160,
        top_n: u32,
        consistency: Consistency,
    ) -> Result<(Option<(BlockView, VersionStamp)>, OpCost)> {
        let (served, mut cost) = self.run_get_stamped(net, key, top_n, false)?;
        let floor = self.session.floor(&key);
        let below = |s: &Option<(BlockView, VersionStamp)>| match s {
            // A missing value is below any real floor: the session saw a
            // write (or a written view) the responding holders lack.
            None => !floor.is_zero(),
            Some((_, stamp)) => *stamp < floor,
        };
        let enforce = matches!(
            consistency,
            Consistency::ReadYourWrites | Consistency::MonotonicReads
        );
        if !enforce || !below(&served) {
            return Ok((served, cost));
        }
        // Escalate: re-read refusing caches end-to-end, then re-check.
        let (served, retry_cost) = self.run_get_stamped(net, key, top_n, true)?;
        cost.absorb(retry_cost);
        if below(&served) {
            return Err(DharmaError::StaleRead(format!(
                "key {key:?}: authoritative re-read served {:?}, session floor is {floor:?}",
                served.map(|(_, s)| s).unwrap_or(VersionStamp::ZERO)
            )));
        }
        Ok((served, cost))
    }

    /// **Resource insertion** (§IV-A): publishes `r` with URI and tags,
    /// in `2 + 2m` lookups.
    ///
    /// 1. `PUT r̃` — the signed URI record;
    /// 2. `APPEND r̄` — all `m` tag entries at weight 1 (one block update);
    /// 3. per tag `tᵢ`: `APPEND t̄ᵢ` (the reverse edge) and `APPEND t̂ᵢ`
    ///    (the `m − 1` new FG arcs) — `2m` block updates.
    pub fn insert_resource(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
        uri: &str,
        tags: &[&str],
    ) -> Result<OpCost> {
        let mut unique: Vec<&str> = tags.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.is_empty() {
            return Err(DharmaError::InvalidArgument(
                "a resource needs at least one tag".into(),
            ));
        }
        let mut cost = OpCost::default();

        // 1. r̃ — the URI record, signed by the author (Likir content
        //    authentication).
        let record =
            AuthenticatedRecord::sign(&self.identity, &self.cfg.namespace, uri.as_bytes().to_vec());
        let blob = dharma_types::WireEncode::encode_to_bytes(&record).to_vec();
        let key = block_key(resource, BlockType::ResourceUri);
        cost.absorb(self.run_write(net, key, true, |n, ctx| n.put_blob(ctx, key, blob.clone()))?);

        // 2. r̄ — all tags of the new resource in one block update.
        let key = block_key(resource, BlockType::ResourceTags);
        let entries: Vec<StoredEntry> = unique
            .iter()
            .map(|t| StoredEntry {
                name: (*t).to_owned(),
                weight: 1,
            })
            .collect();
        cost.absorb(self.run_write(net, key, false, |n, ctx| {
            n.append_many(ctx, key, entries.clone())
        })?);

        // 3. per tag: t̄ᵢ reverse edge + t̂ᵢ pairwise FG arcs.
        for &t in &unique {
            let key = block_key(t, BlockType::TagResources);
            let entry = vec![StoredEntry {
                name: resource.to_owned(),
                weight: 1,
            }];
            cost.absorb(self.run_write(net, key, false, |n, ctx| {
                n.append_many(ctx, key, entry.clone())
            })?);

            let key = block_key(t, BlockType::TagNeighbors);
            let arcs: Vec<StoredEntry> = unique
                .iter()
                .filter(|&&other| other != t)
                .map(|&other| StoredEntry {
                    name: other.to_owned(),
                    weight: 1,
                })
                .collect();
            if arcs.is_empty() {
                // Single-tag resource: the t̂ update would be empty; the
                // paper still counts the lookup (the block is touched to
                // ensure existence). We append a zero-entry update.
                cost.absorb(
                    self.run_write(net, key, false, |n, ctx| n.append_many(ctx, key, vec![]))?,
                );
            } else {
                cost.absorb(self.run_write(net, key, false, |n, ctx| {
                    n.append_many(ctx, key, arcs.clone())
                })?);
            }
        }
        Ok(cost)
    }

    /// **Tag insertion** (§IV-A/B): attaches `t` to existing resource `r`.
    ///
    /// Naive policy: `4 + |Tags(r)|` lookups. Approximated: `4 + k`.
    ///
    /// 1. `APPEND r̄ (t, +1)`;
    /// 2. `APPEND t̄ (r, +1)`;
    /// 3. `GET r̄` — retrieve `Tags(r)` with weights;
    /// 4. `APPEND t̂` — forward arcs `(t, τ)` for **all** `τ ∈ Tags(r)` in
    ///    one block update (empty when `t` was already on `r`: the exact
    ///    model leaves `sim(t, ·)` unchanged in that case);
    /// 5. per selected `τ` (all of them naive, ≤ k under Approximation A):
    ///    `APPEND τ̂ (t, +1)` — the reverse arcs, one lookup each.
    ///
    /// Steps 1–3 plus the `t̂` touch make the constant 4; step 5 contributes
    /// `|Tags(r)|` or `k`. When `t` was already present, step 4 is a no-op
    /// append so the lookup count stays at the paper's constant.
    pub fn tag(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
        tag: &str,
    ) -> Result<TagReceipt> {
        let mut cost = OpCost::default();

        // 1. u(t, r) += 1 on r̄.
        let r_bar = block_key(resource, BlockType::ResourceTags);
        let e = vec![StoredEntry {
            name: tag.to_owned(),
            weight: 1,
        }];
        cost.absorb(self.run_write(net, r_bar, false, |n, ctx| {
            n.append_many(ctx, r_bar, e.clone())
        })?);

        // 2. u(t, r) += 1 on t̄.
        let t_bar = block_key(tag, BlockType::TagResources);
        let e = vec![StoredEntry {
            name: resource.to_owned(),
            weight: 1,
        }];
        cost.absorb(self.run_write(net, t_bar, false, |n, ctx| {
            n.append_many(ctx, t_bar, e.clone())
        })?);

        // 3. Fetch Tags(r) from r̄ (unfiltered: tagging needs the full set;
        //    resources carry few tags compared to popular tags' blocks).
        let (view, get_cost) = self.run_get(net, r_bar, 0)?;
        cost.absorb(get_cost);
        let view = view.ok_or_else(|| {
            DharmaError::NotFound(format!("resource '{resource}' has no r̄ block"))
        })?;

        // The weight of t after our own step-1 increment tells us whether
        // this tagging attached t to r for the first time.
        let t_weight = view
            .entries
            .iter()
            .find(|(n, _)| n == tag)
            .map(|(_, w)| *w)
            .unwrap_or(1);
        let newly_attached = t_weight <= 1;

        // Neighborhood τ ∈ Tags(r) \ {t}.
        let mut neighbors: Vec<(String, u64)> =
            view.entries.into_iter().filter(|(n, _)| n != tag).collect();
        let neighborhood = neighbors.len();

        // 4. Forward arcs (t, τ) on t̂ — only when newly attached. This is a
        //    single block update whatever its entry count, so Approximation A
        //    does not subset it (Table I's constant-4 term); Approximation B
        //    replaces the u(τ, r) bulk increment with one token.
        let t_hat = block_key(tag, BlockType::TagNeighbors);
        let forward: Vec<StoredEntry> = if newly_attached {
            neighbors
                .iter()
                .map(|(name, u_tau_r)| {
                    let delta = match self.cfg.policy.b_policy {
                        BPolicy::Exact | BPolicy::LiteralB => *u_tau_r,
                        BPolicy::UnitIncrement => 1,
                    };
                    StoredEntry {
                        name: name.clone(),
                        weight: delta,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        cost.absorb(self.run_write(net, t_hat, false, |n, ctx| {
            n.append_many(ctx, t_hat, forward.clone())
        })?);

        // Approximation A: the per-neighbor τ̂ updates below are each a full
        // overlay lookup, so they are capped at k random neighbors.
        if let Some(k) = self.cfg.policy.connection_k {
            if neighbors.len() > k {
                neighbors.partial_shuffle(&mut self.rng, k);
                neighbors.truncate(k);
            }
        }

        // 5. Reverse arcs (τ, t) on each τ̂ — the linear/k term.
        let mut updated = 0usize;
        for (name, _) in &neighbors {
            let tau_hat = block_key(name, BlockType::TagNeighbors);
            let e = vec![StoredEntry {
                name: tag.to_owned(),
                weight: 1,
            }];
            cost.absorb(self.run_write(net, tau_hat, false, |n, ctx| {
                n.append_many(ctx, tau_hat, e.clone())
            })?);
            updated += 1;
        }

        Ok(TagReceipt {
            cost,
            neighborhood,
            updated,
            newly_attached,
        })
    }

    /// One **faceted-search step** (§IV-A): fetch `t̂` (filtered to the top
    /// `search_top_n` by `sim`) and `t̄`. Two lookups; intersections happen
    /// locally in [`crate::search::DhtFacetedSearch`].
    pub fn search_step(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        tag: &str,
    ) -> Result<(BlockView, BlockView, OpCost)> {
        let mut cost = OpCost::default();
        let t_hat = block_key(tag, BlockType::TagNeighbors);
        let (nbrs, c1) = self.run_get(net, t_hat, self.cfg.search_top_n)?;
        cost.absorb(c1);
        let t_bar = block_key(tag, BlockType::TagResources);
        let (res, c2) = self.run_get(net, t_bar, 0)?;
        cost.absorb(c2);
        Ok((nbrs.unwrap_or_default(), res.unwrap_or_default(), cost))
    }

    /// Resolves a resource name to its signed URI record (`GET r̃`).
    pub fn resolve_uri(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
    ) -> Result<(Option<Vec<u8>>, OpCost)> {
        let key = block_key(resource, BlockType::ResourceUri);
        let (view, cost) = self.run_get(net, key, 0)?;
        Ok((view.and_then(|v| v.blob), cost))
    }

    /// Gracefully departs the overlay: the home node pushes a parting
    /// snapshot of every held key to its `k` closest peers and sends
    /// `Leave` notices so receivers purge it immediately, then it is
    /// removed from the network. The simulation is run briefly so the
    /// farewell datagrams land. Every subsequent operation on this client
    /// fails fast with [`DharmaError::NodeUnavailable`].
    pub fn leave(&mut self, net: &mut SimNet<KademliaNode>) -> Result<()> {
        if net.is_removed(self.home) {
            return Err(DharmaError::NodeUnavailable(format!(
                "home node {} already departed the overlay",
                self.home
            )));
        }
        // A crashed (suspended) node cannot execute a farewell — letting it
        // broadcast parting datagrams while every other op fails fast would
        // be inconsistent. Revive it first, or let it stay a crash.
        if !net.is_alive(self.home) {
            return Err(DharmaError::NodeUnavailable(format!(
                "home node {} is down (crashed or suspended)",
                self.home
            )));
        }
        net.leave(self.home, |n, ctx| n.leave(ctx));
        net.run_until(net.now_us() + 1_000_000);
        Ok(())
    }

    // ----- blocking operation drivers ---------------------------------

    /// Issues one operation on the home node and runs the net until it
    /// completes, reissuing on timeout (up to `op_retries`) when
    /// `retryable`. **Only idempotent operations may be retried**: a GET
    /// or a blob PUT can be repeated safely, but an `APPEND` that was
    /// applied at some replicas before the coordinator died would
    /// double-count its tokens if reissued — append callers pass
    /// `retryable = false` and surface the timeout instead. Each attempt
    /// counts as one overlay lookup on the receipt; cache hits are only
    /// meaningful (and only tallied) for reads.
    fn run_op(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        retryable: bool,
        count_cache_hits: bool,
        mut issue: impl FnMut(&mut KademliaNode, &mut dharma_net::Ctx<KadOutput>) -> u64,
    ) -> Result<(KadOutput, OpCost)> {
        let mut cost = OpCost::default();
        let mut attempt = 0u32;
        loop {
            if net.is_removed(self.home) {
                return Err(DharmaError::NodeUnavailable(format!(
                    "home node {} departed the overlay",
                    self.home
                )));
            }
            // A crashed (suspended) home is just as unusable as a departed
            // one: its timers are frozen, so every issued op would sit in
            // the queue forever and the client would burn all its retries
            // on timeouts before surfacing a generic error. Fail fast with
            // the distinct error instead; the caller can revive or rebind.
            if !net.is_alive(self.home) {
                return Err(DharmaError::NodeUnavailable(format!(
                    "home node {} is down (crashed or suspended)",
                    self.home
                )));
            }
            let before = net.counters().sent();
            let hits_before = net.counters().cache_hits();
            let op = net.with_node(self.home, &mut issue);
            let out = self.wait_for(net, op);
            cost.lookups += 1;
            cost.messages += net.counters().sent() - before;
            if count_cache_hits {
                cost.cache_hits += net.counters().cache_hits() - hits_before;
            }
            match out {
                Ok(out) => return Ok((out, cost)),
                Err(DharmaError::Timeout(_)) if retryable && attempt < self.cfg.op_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Issues a write op for `key` on the home node and runs the net to
    /// completion. The write's origin stamp (minted by the coordinator)
    /// raises this session's floor for the key — the read-your-writes
    /// obligation. `retryable` must only be true for idempotent writes
    /// (blob PUTs, replication pushes) — see [`DharmaClient::run_op`].
    fn run_write(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: Id160,
        retryable: bool,
        issue: impl FnMut(&mut KademliaNode, &mut dharma_net::Ctx<KadOutput>) -> u64,
    ) -> Result<OpCost> {
        let (out, cost) = self.run_op(net, retryable, false, issue)?;
        match out {
            KadOutput::Written { stamp, .. } => {
                self.session.observe(key, stamp);
                Ok(cost)
            }
            other => Err(DharmaError::Protocol(format!(
                "expected write completion, got {other:?}"
            ))),
        }
    }

    /// Issues a filtered GET (idempotent, hence always retryable) and runs
    /// the net to completion.
    fn run_get(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: Id160,
        top_n: u32,
    ) -> Result<(Option<BlockView>, OpCost)> {
        let (served, cost) = self.run_get_stamped(net, key, top_n, false)?;
        Ok((served.map(|(view, _)| view), cost))
    }

    /// The stamped GET underneath every client read. `fresh` requests the
    /// cache-bypassing, authoritative-only lookup
    /// ([`KademliaNode::get_fresh`] — the session-consistency
    /// escalation). Every served version raises the session floor: a
    /// later monotonic read may not go back behind it.
    fn run_get_stamped(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: Id160,
        top_n: u32,
        fresh: bool,
    ) -> Result<(Option<(BlockView, VersionStamp)>, OpCost)> {
        let (out, cost) = self.run_op(net, true, true, |n, ctx| {
            if fresh {
                n.get_fresh(ctx, key, top_n)
            } else {
                n.get(ctx, key, top_n)
            }
        })?;
        match out {
            KadOutput::Value { value, .. } => {
                let served = value.map(|v| {
                    (
                        BlockView {
                            entries: v.entries.into_iter().map(|e| (e.name, e.weight)).collect(),
                            truncated: v.truncated,
                            blob: v.blob,
                        },
                        v.version,
                    )
                });
                if let Some((_, stamp)) = &served {
                    self.session.observe(key, *stamp);
                }
                Ok((served, cost))
            }
            other => Err(DharmaError::Protocol(format!(
                "expected value completion, got {other:?}"
            ))),
        }
    }

    /// Runs the simulation until operation `op` completes.
    fn wait_for(&mut self, net: &mut SimNet<KademliaNode>, op: u64) -> Result<KadOutput> {
        if let Some(out) = self.stash.remove(&op) {
            return Ok(out);
        }
        let mut budget = self.cfg.max_events_per_op;
        loop {
            for (id, out) in net.take_completions() {
                self.stash.insert(id, out);
            }
            if let Some(out) = self.stash.remove(&op) {
                return Ok(out);
            }
            let stepped = net.run_until_idle(1024);
            if stepped == 0 {
                // Queue drained without completing: one more completion scan.
                for (id, out) in net.take_completions() {
                    self.stash.insert(id, out);
                }
                return self.stash.remove(&op).ok_or_else(|| {
                    DharmaError::Timeout(format!("operation {op} never completed"))
                });
            }
            budget = budget.saturating_sub(stepped);
            if budget == 0 {
                return Err(DharmaError::Timeout(format!(
                    "operation {op} exceeded the event budget"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::overlay;
    use dharma_likir::CertificationAuthority;
    use dharma_types::{block_key, BlockType};

    fn client(policy: ApproxPolicy, home: u32) -> DharmaClient {
        let ca = CertificationAuthority::new(b"dharma-tests");
        let identity = ca.register("alice", 0);
        DharmaClient::new(
            home,
            identity,
            DharmaConfig {
                policy,
                ..DharmaConfig::default()
            },
        )
    }

    #[test]
    fn insert_costs_2_plus_2m() {
        let mut net = overlay(16, 10);
        let mut c = client(ApproxPolicy::EXACT, 1);
        for (m, tags) in [
            (1usize, vec!["rock"]),
            (3, vec!["rock", "metal", "live"]),
            (5, vec!["a", "b", "c", "d", "e"]),
        ] {
            let cost = c
                .insert_resource(&mut net, &format!("res-{m}"), "uri://x", &tags)
                .unwrap();
            assert_eq!(cost.lookups as usize, 2 + 2 * m, "m = {m}");
        }
    }

    #[test]
    fn tag_costs_match_table1() {
        let mut net = overlay(16, 11);
        // Insert a resource with 5 tags, then tag it with a 6th.
        let mut naive = client(ApproxPolicy::EXACT, 1);
        naive
            .insert_resource(&mut net, "res", "uri://x", &["a", "b", "c", "d", "e"])
            .unwrap();
        let receipt = naive.tag(&mut net, "res", "fresh").unwrap();
        assert_eq!(receipt.neighborhood, 5);
        assert!(receipt.newly_attached);
        assert_eq!(receipt.cost.lookups, 4 + 5, "naive: 4 + |Tags(r)|");

        // Approximated with k = 2 on a second fresh tag.
        let mut approx = client(ApproxPolicy::paper(2), 1);
        let receipt = approx.tag(&mut net, "res", "fresh2").unwrap();
        assert_eq!(receipt.cost.lookups, 4 + 2, "approx: 4 + k");
        assert_eq!(receipt.updated, 2);
        // Neighborhood now includes "fresh" from the previous op.
        assert_eq!(receipt.neighborhood, 6);
    }

    #[test]
    fn search_step_costs_2() {
        let mut net = overlay(16, 12);
        let mut c = client(ApproxPolicy::EXACT, 2);
        c.insert_resource(&mut net, "r1", "uri://1", &["rock", "metal"])
            .unwrap();
        let (nbrs, res, cost) = c.search_step(&mut net, "rock").unwrap();
        assert_eq!(cost.lookups, 2);
        assert_eq!(nbrs.entries.len(), 1);
        assert_eq!(nbrs.entries[0].0, "metal");
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].0, "r1");
    }

    #[test]
    fn tagging_updates_blocks_consistently() {
        let mut net = overlay(12, 13);
        let mut c = client(ApproxPolicy::EXACT, 1);
        c.insert_resource(&mut net, "album", "uri://album", &["rock", "metal"])
            .unwrap();
        // Tag twice with an existing tag and once with a new one.
        c.tag(&mut net, "album", "rock").unwrap();
        let receipt = c.tag(&mut net, "album", "grunge").unwrap();
        assert!(receipt.newly_attached);

        // Read back r̄: u(rock) = 2, u(metal) = 1, u(grunge) = 1.
        let (_, _, _) = c.search_step(&mut net, "rock").unwrap();
        let key = block_key("album", BlockType::ResourceTags);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let view = view.unwrap();
        let get = |n: &str| view.entries.iter().find(|(e, _)| e == n).map(|(_, w)| *w);
        assert_eq!(get("rock"), Some(2));
        assert_eq!(get("metal"), Some(1));
        assert_eq!(get("grunge"), Some(1));

        // FG arcs: sim(rock → grunge) = u(grunge, album) = 1 (exact policy),
        // sim(grunge → rock) = u(rock, album) = 2 at attach time.
        let key = block_key("grunge", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let rock = entries.iter().find(|(n, _)| n == "rock").unwrap();
        assert_eq!(rock.1, 2, "exact B adds u(rock, album)");

        let key = block_key("rock", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let grunge = entries.iter().find(|(n, _)| n == "grunge").unwrap();
        assert_eq!(grunge.1, 1);
    }

    #[test]
    fn approximation_b_appends_unit() {
        let mut net = overlay(12, 14);
        let mut c = client(ApproxPolicy::paper(10), 1);
        c.insert_resource(&mut net, "album", "uri://album", &["rock"])
            .unwrap();
        c.tag(&mut net, "album", "rock").unwrap();
        c.tag(&mut net, "album", "rock").unwrap(); // u(rock, album) = 3
        c.tag(&mut net, "album", "grunge").unwrap();
        let key = block_key("grunge", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let rock = entries.iter().find(|(n, _)| n == "rock").unwrap();
        assert_eq!(rock.1, 1, "Approximation B: unit token, not u(τ, r) = 3");
    }

    #[test]
    fn uri_record_roundtrips_and_verifies() {
        let mut net = overlay(12, 15);
        let ca = CertificationAuthority::new(b"dharma-tests");
        let identity = ca.register("alice", 0);
        let mut c = DharmaClient::new(3, identity, DharmaConfig::default());
        c.insert_resource(&mut net, "song", "uri://song.mp3", &["pop"])
            .unwrap();
        let (blob, cost) = c.resolve_uri(&mut net, "song").unwrap();
        assert_eq!(cost.lookups, 1);
        let record = <AuthenticatedRecord as dharma_types::WireDecode>::decode_exact(
            &blob.expect("record stored"),
        )
        .unwrap();
        let verifier = ca.verifier();
        assert_eq!(record.verify(&verifier, 0).unwrap(), b"uri://song.mp3");
        // A different CA cannot verify it.
        let other = CertificationAuthority::new(b"other");
        assert!(record.verify(&other.verifier(), 0).is_err());
    }

    #[test]
    fn crashed_home_fails_fast_with_distinct_error() {
        let mut net = overlay(12, 17);
        let mut c = client(ApproxPolicy::EXACT, 3);
        c.insert_resource(&mut net, "res", "uri://x", &["rock"])
            .unwrap();
        // Suspend the home node: previously every op burned all its
        // retries on event-queue timeouts before surfacing a generic
        // Timeout; now the dead coordinator is detected up front.
        let sent_before = net.counters().sent();
        net.crash(3);
        let err = c.search_step(&mut net, "rock").unwrap_err();
        assert!(
            matches!(err, DharmaError::NodeUnavailable(_)),
            "expected NodeUnavailable, got {err:?}"
        );
        assert_eq!(
            net.counters().sent(),
            sent_before,
            "fail-fast must not issue any datagrams"
        );
        // A crashed node cannot execute a graceful farewell either.
        assert!(matches!(
            c.leave(&mut net).unwrap_err(),
            DharmaError::NodeUnavailable(_)
        ));
        assert!(!net.is_removed(3), "a refused leave must not remove");
        // Revival restores service — the distinct error is retryable by
        // rebinding or reviving, unlike a permanent departure.
        net.revive(3);
        assert!(c.search_step(&mut net, "rock").is_ok());
    }

    #[test]
    fn graceful_leave_preserves_data_and_fails_later_ops() {
        let mut net = overlay(16, 18);
        let mut c = client(ApproxPolicy::EXACT, 2);
        c.insert_resource(&mut net, "kept", "uri://kept", &["rock", "jazz"])
            .unwrap();
        c.leave(&mut net).unwrap();

        // The departed client refuses further work, with the distinct
        // error and without touching the network.
        let err = c.search_step(&mut net, "rock").unwrap_err();
        assert!(matches!(err, DharmaError::NodeUnavailable(_)));
        assert!(matches!(
            c.leave(&mut net).unwrap_err(),
            DharmaError::NodeUnavailable(_)
        ));

        // The data it wrote (and any replicas it held) survives: another
        // client still resolves everything.
        let mut other = client(ApproxPolicy::EXACT, 7);
        let (nbrs, res, _) = other.search_step(&mut net, "rock").unwrap();
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].0, "kept");
        assert_eq!(nbrs.entries.len(), 1);
        assert_eq!(nbrs.entries[0].0, "jazz");
        let (uri, _) = other.resolve_uri(&mut net, "kept").unwrap();
        assert!(uri.is_some(), "the URI record survives the departure");
    }

    /// Like [`overlay`], but with per-node hot caches enabled and enough
    /// nodes that a client's home is usually *not* a holder — reads get
    /// cached, and a later write elsewhere leaves those caches stale.
    fn cached_overlay(n: usize, seed: u64) -> dharma_net::SimNet<KademliaNode> {
        use dharma_kademlia::KadConfig;
        use dharma_net::{SimConfig, SimNet};
        use dharma_types::Id160;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut net = SimNet::new(SimConfig {
            latency_min_us: 1_000,
            latency_max_us: 8_000,
            drop_rate: 0.0,
            mtu: 64 * 1024,
            seed,
            shards: 1,
            topology: None,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = KadConfig {
            k: 8,
            alpha: 3,
            rpc_timeout_us: 300_000,
            reply_budget: 60_000,
            cache: Some(dharma_cache::CacheConfig::default()),
            counters: net.counters(),
            ..KadConfig::default()
        };
        let mut first = None;
        for i in 0..n {
            let id = Id160::random(&mut rng);
            let node = KademliaNode::new(id, i as u32, cfg.clone());
            let addr = net.add_node(node);
            if let Some(seed_contact) = &first {
                net.node_mut(addr)
                    .add_seed(dharma_kademlia::Contact::clone(seed_contact));
                net.with_node(addr, |node, ctx| {
                    node.bootstrap(ctx);
                });
            } else {
                first = Some(net.node(addr).contact().clone());
            }
        }
        net.run_until_idle(5_000_000);
        net.take_completions();
        net
    }

    #[test]
    fn dharma_config_builder_validates_both_ways() {
        assert!(DharmaConfig::builder().namespace("").build().is_err());
        assert!(DharmaConfig::builder()
            .max_events_per_op(0)
            .build()
            .is_err());
        let cfg = DharmaConfig::builder()
            .search_top_n(7)
            .op_retries(0)
            .seed(5)
            .namespace("scoped")
            .build()
            .unwrap();
        assert_eq!(cfg.search_top_n, 7);
        assert_eq!(cfg.op_retries, 0);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.namespace, "scoped");
    }

    #[test]
    fn session_floor_tracks_writes_and_reads() {
        let mut net = overlay(12, 21);
        let mut c = client(ApproxPolicy::EXACT, 1);
        assert_eq!(c.session().tracked(), 0, "fresh session is empty");
        c.insert_resource(&mut net, "res", "uri://x", &["rock"])
            .unwrap();
        let r_bar = block_key("res", BlockType::ResourceTags);
        assert!(
            !c.session().floor(&r_bar).is_zero(),
            "a completed write must raise the session floor for its key"
        );
        // An eventual read observes too, and behaves exactly like the
        // classic read path.
        let (view, _) = c.get(&mut net, r_bar, 0, Consistency::Eventual).unwrap();
        assert_eq!(view.unwrap().entries, vec![("rock".to_owned(), 1)]);
        c.reset_session();
        assert_eq!(c.session().tracked(), 0, "reset starts a new session");
    }

    #[test]
    fn read_your_writes_escalates_past_a_stale_cache() {
        let mut net = cached_overlay(40, 23);
        let mut writer = client(ApproxPolicy::EXACT, 2);
        let mut reader = client(ApproxPolicy::EXACT, 1);
        writer
            .insert_resource(&mut net, "shared", "uri://s", &["old"])
            .unwrap();
        let r_bar = block_key("shared", BlockType::ResourceTags);

        // The reader's first read pins the pre-write view in its home
        // node's cache.
        let (view, _) = reader
            .get(&mut net, r_bar, 0, Consistency::Eventual)
            .unwrap();
        assert_eq!(view.unwrap().entries.len(), 1);

        // The writer tags the resource from a different home node — the
        // reader's cached view is now stale (no freshness subsystem here
        // to invalidate it).
        writer.tag(&mut net, "shared", "brand-new").unwrap();

        // Without the session floor, the reader keeps serving the stale
        // cached view.
        let (stale, _) = reader
            .get(&mut net, r_bar, 0, Consistency::Eventual)
            .unwrap();
        let stale = stale.unwrap();
        assert!(
            !stale.entries.iter().any(|(n, _)| n == "brand-new"),
            "precondition: the eventual read must still serve the stale cache \
             (home node accidentally a holder? pick another seed)"
        );

        // Causal handoff: the reader resumes the writer's session. The
        // session read detects the below-floor serve, escalates to an
        // authoritative re-read, and returns the written view.
        reader.import_session(writer.session());
        let (fresh, cost) = reader
            .get(&mut net, r_bar, 0, Consistency::ReadYourWrites)
            .unwrap();
        assert!(
            fresh.unwrap().entries.iter().any(|(n, _)| n == "brand-new"),
            "the session read must reflect the imported session's write"
        );
        assert_eq!(
            cost.lookups, 2,
            "one below-floor serve plus one authoritative escalation"
        );

        // The escalation re-pinned a current view: the next session read
        // passes on the first serve.
        let (_, cost) = reader
            .get(&mut net, r_bar, 0, Consistency::MonotonicReads)
            .unwrap();
        assert_eq!(cost.lookups, 1, "no second escalation needed");
    }

    #[test]
    fn unreachable_floor_surfaces_stale_read() {
        let mut net = overlay(12, 24);
        let mut c = client(ApproxPolicy::EXACT, 1);
        c.insert_resource(&mut net, "res", "uri://x", &["rock"])
            .unwrap();
        let r_bar = block_key("res", BlockType::ResourceTags);
        // A forged token claims a write no holder has ever seen: the
        // session read escalates once, then refuses to serve below the
        // floor rather than silently going back in time.
        let mut forged = SessionToken::default();
        forged.observe(
            r_bar,
            dharma_types::VersionStamp::new(u64::MAX, dharma_types::sha1(b"future")),
        );
        c.import_session(&forged);
        let err = c
            .get(&mut net, r_bar, 0, Consistency::MonotonicReads)
            .unwrap_err();
        assert!(
            matches!(err, DharmaError::StaleRead(_)),
            "expected StaleRead, got {err:?}"
        );
        // Eventual reads are unaffected by the floor.
        let (view, _) = c.get(&mut net, r_bar, 0, Consistency::Eventual).unwrap();
        assert!(view.is_some());
    }

    #[test]
    fn tagging_unknown_resource_creates_degenerate_entry() {
        // The paper's Tag(r, t) assumes r exists; the blind first append
        // means an unknown name simply becomes a one-tag resource (no
        // pre-flight existence lookup — that would break Table I's constant).
        let mut net = overlay(8, 16);
        let mut c = client(ApproxPolicy::EXACT, 1);
        let receipt = c.tag(&mut net, "ghost", "rock").unwrap();
        assert_eq!(receipt.neighborhood, 0);
        assert!(receipt.newly_attached);
        assert_eq!(receipt.cost.lookups, 4);
    }
}
