//! The DHARMA client: tagging primitives over the DHT (paper §IV).
//!
//! A [`DharmaClient`] is bound to one overlay node (its *home node*) and
//! drives the simulated network synchronously: each overlay lookup is
//! issued, the simulation is run until the operation completes, and the
//! client accounts one lookup on its [`OpCost`] receipt. This mirrors the
//! deployment model of the paper, where the tagging application sits on a
//! Likir node and performs blocking PUT/GET primitives.
//!
//! The **naive vs approximated** tagging split of §IV-B is a client-side
//! policy ([`ApproxPolicy`]): the DHT neither knows nor cares — which is the
//! point, since Approximation A only *bounds how many `τ̂` blocks the client
//! updates* and Approximation B only *changes the increment it appends*.

use dharma_folksonomy::{ApproxPolicy, BPolicy};
use dharma_kademlia::{KadOutput, KademliaNode, StoredEntry};
use dharma_likir::{AuthenticatedRecord, Identity};
use dharma_net::SimNet;
use dharma_types::{block_key, BlockType, DharmaError, FxHashMap, Result};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cost::OpCost;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct DharmaConfig {
    /// Approximation policy for tagging operations.
    pub policy: ApproxPolicy,
    /// Index-side filtering limit for search-step `GET t̂` (paper: 100).
    pub search_top_n: u32,
    /// Likir application namespace used when signing URI records.
    pub namespace: String,
    /// Client-side RNG seed (Approximation A subset selection).
    pub seed: u64,
    /// Safety cap on simulator events per blocking operation.
    pub max_events_per_op: u64,
    /// How many times a timed-out **idempotent** operation (GET, blob
    /// PUT) is reissued before the error surfaces. An overlay op can die
    /// with its coordinator (the home node crashes mid-lookup and its RPC
    /// timers die with it) or starve when every replica times out; under
    /// churn a fresh attempt usually routes around the corpses. APPENDs
    /// are **never** retried: replicas that applied the append before the
    /// timeout would double-count its tokens on a reissue. Each attempt
    /// is accounted as one more lookup on the receipt. 0 restores
    /// fail-fast.
    pub op_retries: u32,
}

impl Default for DharmaConfig {
    fn default() -> Self {
        DharmaConfig {
            policy: ApproxPolicy::paper(1),
            search_top_n: 100,
            namespace: "dharma".into(),
            seed: 0,
            max_events_per_op: 5_000_000,
            op_retries: 2,
        }
    }
}

/// What a tagging operation reports beyond its cost.
#[derive(Clone, Debug)]
pub struct TagReceipt {
    /// Lookup/message cost.
    pub cost: OpCost,
    /// `|Tags(r)|` as observed from the fetched `r̄` block (excluding `t`).
    pub neighborhood: usize,
    /// How many `τ̂` blocks were updated (≤ k under Approximation A).
    pub updated: usize,
    /// Whether `t` was newly attached to `r`.
    pub newly_attached: bool,
}

/// A fetched block: entries (name → weight) plus truncation flag.
#[derive(Clone, Debug, Default)]
pub struct BlockView {
    /// Entries of the weighted set.
    pub entries: Vec<(String, u64)>,
    /// True if the server cut the list (top-n filtering or MTU).
    pub truncated: bool,
    /// Blob content, if the block stores one.
    pub blob: Option<Vec<u8>>,
}

/// The DHARMA tagging client.
pub struct DharmaClient {
    home: dharma_net::NodeAddr,
    identity: Identity,
    cfg: DharmaConfig,
    rng: StdRng,
    /// Completions that arrived while waiting for other ops.
    stash: FxHashMap<u64, KadOutput>,
}

impl DharmaClient {
    /// Binds a client to its home overlay node.
    pub fn new(home: dharma_net::NodeAddr, identity: Identity, cfg: DharmaConfig) -> Self {
        let seed = cfg.seed;
        DharmaClient {
            home,
            identity,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            stash: FxHashMap::default(),
        }
    }

    /// The configured approximation policy.
    pub fn policy(&self) -> ApproxPolicy {
        self.cfg.policy
    }

    /// The home node's transport address.
    pub fn home(&self) -> dharma_net::NodeAddr {
        self.home
    }

    /// **Resource insertion** (§IV-A): publishes `r` with URI and tags,
    /// in `2 + 2m` lookups.
    ///
    /// 1. `PUT r̃` — the signed URI record;
    /// 2. `APPEND r̄` — all `m` tag entries at weight 1 (one block update);
    /// 3. per tag `tᵢ`: `APPEND t̄ᵢ` (the reverse edge) and `APPEND t̂ᵢ`
    ///    (the `m − 1` new FG arcs) — `2m` block updates.
    pub fn insert_resource(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
        uri: &str,
        tags: &[&str],
    ) -> Result<OpCost> {
        let mut unique: Vec<&str> = tags.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.is_empty() {
            return Err(DharmaError::InvalidArgument(
                "a resource needs at least one tag".into(),
            ));
        }
        let mut cost = OpCost::default();

        // 1. r̃ — the URI record, signed by the author (Likir content
        //    authentication).
        let record =
            AuthenticatedRecord::sign(&self.identity, &self.cfg.namespace, uri.as_bytes().to_vec());
        let blob = dharma_types::WireEncode::encode_to_bytes(&record).to_vec();
        let key = block_key(resource, BlockType::ResourceUri);
        cost.absorb(self.run_write(net, true, |n, ctx| n.put_blob(ctx, key, blob.clone()))?);

        // 2. r̄ — all tags of the new resource in one block update.
        let key = block_key(resource, BlockType::ResourceTags);
        let entries: Vec<StoredEntry> = unique
            .iter()
            .map(|t| StoredEntry {
                name: (*t).to_owned(),
                weight: 1,
            })
            .collect();
        cost.absorb(self.run_write(net, false, |n, ctx| {
            n.append_many(ctx, key, entries.clone())
        })?);

        // 3. per tag: t̄ᵢ reverse edge + t̂ᵢ pairwise FG arcs.
        for &t in &unique {
            let key = block_key(t, BlockType::TagResources);
            let entry = vec![StoredEntry {
                name: resource.to_owned(),
                weight: 1,
            }];
            cost.absorb(
                self.run_write(net, false, |n, ctx| n.append_many(ctx, key, entry.clone()))?,
            );

            let key = block_key(t, BlockType::TagNeighbors);
            let arcs: Vec<StoredEntry> = unique
                .iter()
                .filter(|&&other| other != t)
                .map(|&other| StoredEntry {
                    name: other.to_owned(),
                    weight: 1,
                })
                .collect();
            if arcs.is_empty() {
                // Single-tag resource: the t̂ update would be empty; the
                // paper still counts the lookup (the block is touched to
                // ensure existence). We append a zero-entry update.
                cost.absorb(self.run_write(net, false, |n, ctx| n.append_many(ctx, key, vec![]))?);
            } else {
                cost.absorb(
                    self.run_write(net, false, |n, ctx| n.append_many(ctx, key, arcs.clone()))?,
                );
            }
        }
        Ok(cost)
    }

    /// **Tag insertion** (§IV-A/B): attaches `t` to existing resource `r`.
    ///
    /// Naive policy: `4 + |Tags(r)|` lookups. Approximated: `4 + k`.
    ///
    /// 1. `APPEND r̄ (t, +1)`;
    /// 2. `APPEND t̄ (r, +1)`;
    /// 3. `GET r̄` — retrieve `Tags(r)` with weights;
    /// 4. `APPEND t̂` — forward arcs `(t, τ)` for **all** `τ ∈ Tags(r)` in
    ///    one block update (empty when `t` was already on `r`: the exact
    ///    model leaves `sim(t, ·)` unchanged in that case);
    /// 5. per selected `τ` (all of them naive, ≤ k under Approximation A):
    ///    `APPEND τ̂ (t, +1)` — the reverse arcs, one lookup each.
    ///
    /// Steps 1–3 plus the `t̂` touch make the constant 4; step 5 contributes
    /// `|Tags(r)|` or `k`. When `t` was already present, step 4 is a no-op
    /// append so the lookup count stays at the paper's constant.
    pub fn tag(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
        tag: &str,
    ) -> Result<TagReceipt> {
        let mut cost = OpCost::default();

        // 1. u(t, r) += 1 on r̄.
        let r_bar = block_key(resource, BlockType::ResourceTags);
        let e = vec![StoredEntry {
            name: tag.to_owned(),
            weight: 1,
        }];
        cost.absorb(self.run_write(net, false, |n, ctx| n.append_many(ctx, r_bar, e.clone()))?);

        // 2. u(t, r) += 1 on t̄.
        let t_bar = block_key(tag, BlockType::TagResources);
        let e = vec![StoredEntry {
            name: resource.to_owned(),
            weight: 1,
        }];
        cost.absorb(self.run_write(net, false, |n, ctx| n.append_many(ctx, t_bar, e.clone()))?);

        // 3. Fetch Tags(r) from r̄ (unfiltered: tagging needs the full set;
        //    resources carry few tags compared to popular tags' blocks).
        let (view, get_cost) = self.run_get(net, r_bar, 0)?;
        cost.absorb(get_cost);
        let view = view.ok_or_else(|| {
            DharmaError::NotFound(format!("resource '{resource}' has no r̄ block"))
        })?;

        // The weight of t after our own step-1 increment tells us whether
        // this tagging attached t to r for the first time.
        let t_weight = view
            .entries
            .iter()
            .find(|(n, _)| n == tag)
            .map(|(_, w)| *w)
            .unwrap_or(1);
        let newly_attached = t_weight <= 1;

        // Neighborhood τ ∈ Tags(r) \ {t}.
        let mut neighbors: Vec<(String, u64)> =
            view.entries.into_iter().filter(|(n, _)| n != tag).collect();
        let neighborhood = neighbors.len();

        // 4. Forward arcs (t, τ) on t̂ — only when newly attached. This is a
        //    single block update whatever its entry count, so Approximation A
        //    does not subset it (Table I's constant-4 term); Approximation B
        //    replaces the u(τ, r) bulk increment with one token.
        let t_hat = block_key(tag, BlockType::TagNeighbors);
        let forward: Vec<StoredEntry> = if newly_attached {
            neighbors
                .iter()
                .map(|(name, u_tau_r)| {
                    let delta = match self.cfg.policy.b_policy {
                        BPolicy::Exact | BPolicy::LiteralB => *u_tau_r,
                        BPolicy::UnitIncrement => 1,
                    };
                    StoredEntry {
                        name: name.clone(),
                        weight: delta,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        cost.absorb(self.run_write(net, false, |n, ctx| {
            n.append_many(ctx, t_hat, forward.clone())
        })?);

        // Approximation A: the per-neighbor τ̂ updates below are each a full
        // overlay lookup, so they are capped at k random neighbors.
        if let Some(k) = self.cfg.policy.connection_k {
            if neighbors.len() > k {
                neighbors.partial_shuffle(&mut self.rng, k);
                neighbors.truncate(k);
            }
        }

        // 5. Reverse arcs (τ, t) on each τ̂ — the linear/k term.
        let mut updated = 0usize;
        for (name, _) in &neighbors {
            let tau_hat = block_key(name, BlockType::TagNeighbors);
            let e = vec![StoredEntry {
                name: tag.to_owned(),
                weight: 1,
            }];
            cost.absorb(
                self.run_write(net, false, |n, ctx| n.append_many(ctx, tau_hat, e.clone()))?,
            );
            updated += 1;
        }

        Ok(TagReceipt {
            cost,
            neighborhood,
            updated,
            newly_attached,
        })
    }

    /// One **faceted-search step** (§IV-A): fetch `t̂` (filtered to the top
    /// `search_top_n` by `sim`) and `t̄`. Two lookups; intersections happen
    /// locally in [`crate::search::DhtFacetedSearch`].
    pub fn search_step(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        tag: &str,
    ) -> Result<(BlockView, BlockView, OpCost)> {
        let mut cost = OpCost::default();
        let t_hat = block_key(tag, BlockType::TagNeighbors);
        let (nbrs, c1) = self.run_get(net, t_hat, self.cfg.search_top_n)?;
        cost.absorb(c1);
        let t_bar = block_key(tag, BlockType::TagResources);
        let (res, c2) = self.run_get(net, t_bar, 0)?;
        cost.absorb(c2);
        Ok((nbrs.unwrap_or_default(), res.unwrap_or_default(), cost))
    }

    /// Resolves a resource name to its signed URI record (`GET r̃`).
    pub fn resolve_uri(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        resource: &str,
    ) -> Result<(Option<Vec<u8>>, OpCost)> {
        let key = block_key(resource, BlockType::ResourceUri);
        let (view, cost) = self.run_get(net, key, 0)?;
        Ok((view.and_then(|v| v.blob), cost))
    }

    /// Gracefully departs the overlay: the home node pushes a parting
    /// snapshot of every held key to its `k` closest peers and sends
    /// `Leave` notices so receivers purge it immediately, then it is
    /// removed from the network. The simulation is run briefly so the
    /// farewell datagrams land. Every subsequent operation on this client
    /// fails fast with [`DharmaError::NodeUnavailable`].
    pub fn leave(&mut self, net: &mut SimNet<KademliaNode>) -> Result<()> {
        if net.is_removed(self.home) {
            return Err(DharmaError::NodeUnavailable(format!(
                "home node {} already departed the overlay",
                self.home
            )));
        }
        // A crashed (suspended) node cannot execute a farewell — letting it
        // broadcast parting datagrams while every other op fails fast would
        // be inconsistent. Revive it first, or let it stay a crash.
        if !net.is_alive(self.home) {
            return Err(DharmaError::NodeUnavailable(format!(
                "home node {} is down (crashed or suspended)",
                self.home
            )));
        }
        net.leave(self.home, |n, ctx| n.leave(ctx));
        net.run_until(net.now_us() + 1_000_000);
        Ok(())
    }

    // ----- blocking operation drivers ---------------------------------

    /// Issues one operation on the home node and runs the net until it
    /// completes, reissuing on timeout (up to `op_retries`) when
    /// `retryable`. **Only idempotent operations may be retried**: a GET
    /// or a blob PUT can be repeated safely, but an `APPEND` that was
    /// applied at some replicas before the coordinator died would
    /// double-count its tokens if reissued — append callers pass
    /// `retryable = false` and surface the timeout instead. Each attempt
    /// counts as one overlay lookup on the receipt; cache hits are only
    /// meaningful (and only tallied) for reads.
    fn run_op(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        retryable: bool,
        count_cache_hits: bool,
        mut issue: impl FnMut(&mut KademliaNode, &mut dharma_net::Ctx<KadOutput>) -> u64,
    ) -> Result<(KadOutput, OpCost)> {
        let mut cost = OpCost::default();
        let mut attempt = 0u32;
        loop {
            if net.is_removed(self.home) {
                return Err(DharmaError::NodeUnavailable(format!(
                    "home node {} departed the overlay",
                    self.home
                )));
            }
            // A crashed (suspended) home is just as unusable as a departed
            // one: its timers are frozen, so every issued op would sit in
            // the queue forever and the client would burn all its retries
            // on timeouts before surfacing a generic error. Fail fast with
            // the distinct error instead; the caller can revive or rebind.
            if !net.is_alive(self.home) {
                return Err(DharmaError::NodeUnavailable(format!(
                    "home node {} is down (crashed or suspended)",
                    self.home
                )));
            }
            let before = net.counters().sent();
            let hits_before = net.counters().cache_hits();
            let op = net.with_node(self.home, &mut issue);
            let out = self.wait_for(net, op);
            cost.lookups += 1;
            cost.messages += net.counters().sent() - before;
            if count_cache_hits {
                cost.cache_hits += net.counters().cache_hits() - hits_before;
            }
            match out {
                Ok(out) => return Ok((out, cost)),
                Err(DharmaError::Timeout(_)) if retryable && attempt < self.cfg.op_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Issues a write op on the home node and runs the net to completion.
    /// `retryable` must only be true for idempotent writes (blob PUTs,
    /// replication pushes) — see [`DharmaClient::run_op`].
    fn run_write(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        retryable: bool,
        issue: impl FnMut(&mut KademliaNode, &mut dharma_net::Ctx<KadOutput>) -> u64,
    ) -> Result<OpCost> {
        let (out, cost) = self.run_op(net, retryable, false, issue)?;
        match out {
            KadOutput::Written { .. } => Ok(cost),
            other => Err(DharmaError::Protocol(format!(
                "expected write completion, got {other:?}"
            ))),
        }
    }

    /// Issues a filtered GET (idempotent, hence always retryable) and runs
    /// the net to completion.
    fn run_get(
        &mut self,
        net: &mut SimNet<KademliaNode>,
        key: dharma_types::Id160,
        top_n: u32,
    ) -> Result<(Option<BlockView>, OpCost)> {
        let (out, cost) = self.run_op(net, true, true, |n, ctx| n.get(ctx, key, top_n))?;
        match out {
            KadOutput::Value { value, .. } => Ok((
                value.map(|v| BlockView {
                    entries: v.entries.into_iter().map(|e| (e.name, e.weight)).collect(),
                    truncated: v.truncated,
                    blob: v.blob,
                }),
                cost,
            )),
            other => Err(DharmaError::Protocol(format!(
                "expected value completion, got {other:?}"
            ))),
        }
    }

    /// Runs the simulation until operation `op` completes.
    fn wait_for(&mut self, net: &mut SimNet<KademliaNode>, op: u64) -> Result<KadOutput> {
        if let Some(out) = self.stash.remove(&op) {
            return Ok(out);
        }
        let mut budget = self.cfg.max_events_per_op;
        loop {
            for (id, out) in net.take_completions() {
                self.stash.insert(id, out);
            }
            if let Some(out) = self.stash.remove(&op) {
                return Ok(out);
            }
            let stepped = net.run_until_idle(1024);
            if stepped == 0 {
                // Queue drained without completing: one more completion scan.
                for (id, out) in net.take_completions() {
                    self.stash.insert(id, out);
                }
                return self.stash.remove(&op).ok_or_else(|| {
                    DharmaError::Timeout(format!("operation {op} never completed"))
                });
            }
            budget = budget.saturating_sub(stepped);
            if budget == 0 {
                return Err(DharmaError::Timeout(format!(
                    "operation {op} exceeded the event budget"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::overlay;
    use dharma_likir::CertificationAuthority;
    use dharma_types::{block_key, BlockType};

    fn client(policy: ApproxPolicy, home: u32) -> DharmaClient {
        let ca = CertificationAuthority::new(b"dharma-tests");
        let identity = ca.register("alice", 0);
        DharmaClient::new(
            home,
            identity,
            DharmaConfig {
                policy,
                ..DharmaConfig::default()
            },
        )
    }

    #[test]
    fn insert_costs_2_plus_2m() {
        let mut net = overlay(16, 10);
        let mut c = client(ApproxPolicy::EXACT, 1);
        for (m, tags) in [
            (1usize, vec!["rock"]),
            (3, vec!["rock", "metal", "live"]),
            (5, vec!["a", "b", "c", "d", "e"]),
        ] {
            let cost = c
                .insert_resource(&mut net, &format!("res-{m}"), "uri://x", &tags)
                .unwrap();
            assert_eq!(cost.lookups as usize, 2 + 2 * m, "m = {m}");
        }
    }

    #[test]
    fn tag_costs_match_table1() {
        let mut net = overlay(16, 11);
        // Insert a resource with 5 tags, then tag it with a 6th.
        let mut naive = client(ApproxPolicy::EXACT, 1);
        naive
            .insert_resource(&mut net, "res", "uri://x", &["a", "b", "c", "d", "e"])
            .unwrap();
        let receipt = naive.tag(&mut net, "res", "fresh").unwrap();
        assert_eq!(receipt.neighborhood, 5);
        assert!(receipt.newly_attached);
        assert_eq!(receipt.cost.lookups, 4 + 5, "naive: 4 + |Tags(r)|");

        // Approximated with k = 2 on a second fresh tag.
        let mut approx = client(ApproxPolicy::paper(2), 1);
        let receipt = approx.tag(&mut net, "res", "fresh2").unwrap();
        assert_eq!(receipt.cost.lookups, 4 + 2, "approx: 4 + k");
        assert_eq!(receipt.updated, 2);
        // Neighborhood now includes "fresh" from the previous op.
        assert_eq!(receipt.neighborhood, 6);
    }

    #[test]
    fn search_step_costs_2() {
        let mut net = overlay(16, 12);
        let mut c = client(ApproxPolicy::EXACT, 2);
        c.insert_resource(&mut net, "r1", "uri://1", &["rock", "metal"])
            .unwrap();
        let (nbrs, res, cost) = c.search_step(&mut net, "rock").unwrap();
        assert_eq!(cost.lookups, 2);
        assert_eq!(nbrs.entries.len(), 1);
        assert_eq!(nbrs.entries[0].0, "metal");
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].0, "r1");
    }

    #[test]
    fn tagging_updates_blocks_consistently() {
        let mut net = overlay(12, 13);
        let mut c = client(ApproxPolicy::EXACT, 1);
        c.insert_resource(&mut net, "album", "uri://album", &["rock", "metal"])
            .unwrap();
        // Tag twice with an existing tag and once with a new one.
        c.tag(&mut net, "album", "rock").unwrap();
        let receipt = c.tag(&mut net, "album", "grunge").unwrap();
        assert!(receipt.newly_attached);

        // Read back r̄: u(rock) = 2, u(metal) = 1, u(grunge) = 1.
        let (_, _, _) = c.search_step(&mut net, "rock").unwrap();
        let key = block_key("album", BlockType::ResourceTags);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let view = view.unwrap();
        let get = |n: &str| view.entries.iter().find(|(e, _)| e == n).map(|(_, w)| *w);
        assert_eq!(get("rock"), Some(2));
        assert_eq!(get("metal"), Some(1));
        assert_eq!(get("grunge"), Some(1));

        // FG arcs: sim(rock → grunge) = u(grunge, album) = 1 (exact policy),
        // sim(grunge → rock) = u(rock, album) = 2 at attach time.
        let key = block_key("grunge", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let rock = entries.iter().find(|(n, _)| n == "rock").unwrap();
        assert_eq!(rock.1, 2, "exact B adds u(rock, album)");

        let key = block_key("rock", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let grunge = entries.iter().find(|(n, _)| n == "grunge").unwrap();
        assert_eq!(grunge.1, 1);
    }

    #[test]
    fn approximation_b_appends_unit() {
        let mut net = overlay(12, 14);
        let mut c = client(ApproxPolicy::paper(10), 1);
        c.insert_resource(&mut net, "album", "uri://album", &["rock"])
            .unwrap();
        c.tag(&mut net, "album", "rock").unwrap();
        c.tag(&mut net, "album", "rock").unwrap(); // u(rock, album) = 3
        c.tag(&mut net, "album", "grunge").unwrap();
        let key = block_key("grunge", BlockType::TagNeighbors);
        let (view, _) = c.run_get(&mut net, key, 0).unwrap();
        let entries = view.unwrap().entries;
        let rock = entries.iter().find(|(n, _)| n == "rock").unwrap();
        assert_eq!(rock.1, 1, "Approximation B: unit token, not u(τ, r) = 3");
    }

    #[test]
    fn uri_record_roundtrips_and_verifies() {
        let mut net = overlay(12, 15);
        let ca = CertificationAuthority::new(b"dharma-tests");
        let identity = ca.register("alice", 0);
        let mut c = DharmaClient::new(3, identity, DharmaConfig::default());
        c.insert_resource(&mut net, "song", "uri://song.mp3", &["pop"])
            .unwrap();
        let (blob, cost) = c.resolve_uri(&mut net, "song").unwrap();
        assert_eq!(cost.lookups, 1);
        let record = <AuthenticatedRecord as dharma_types::WireDecode>::decode_exact(
            &blob.expect("record stored"),
        )
        .unwrap();
        let verifier = ca.verifier();
        assert_eq!(record.verify(&verifier, 0).unwrap(), b"uri://song.mp3");
        // A different CA cannot verify it.
        let other = CertificationAuthority::new(b"other");
        assert!(record.verify(&other.verifier(), 0).is_err());
    }

    #[test]
    fn crashed_home_fails_fast_with_distinct_error() {
        let mut net = overlay(12, 17);
        let mut c = client(ApproxPolicy::EXACT, 3);
        c.insert_resource(&mut net, "res", "uri://x", &["rock"])
            .unwrap();
        // Suspend the home node: previously every op burned all its
        // retries on event-queue timeouts before surfacing a generic
        // Timeout; now the dead coordinator is detected up front.
        let sent_before = net.counters().sent();
        net.crash(3);
        let err = c.search_step(&mut net, "rock").unwrap_err();
        assert!(
            matches!(err, DharmaError::NodeUnavailable(_)),
            "expected NodeUnavailable, got {err:?}"
        );
        assert_eq!(
            net.counters().sent(),
            sent_before,
            "fail-fast must not issue any datagrams"
        );
        // A crashed node cannot execute a graceful farewell either.
        assert!(matches!(
            c.leave(&mut net).unwrap_err(),
            DharmaError::NodeUnavailable(_)
        ));
        assert!(!net.is_removed(3), "a refused leave must not remove");
        // Revival restores service — the distinct error is retryable by
        // rebinding or reviving, unlike a permanent departure.
        net.revive(3);
        assert!(c.search_step(&mut net, "rock").is_ok());
    }

    #[test]
    fn graceful_leave_preserves_data_and_fails_later_ops() {
        let mut net = overlay(16, 18);
        let mut c = client(ApproxPolicy::EXACT, 2);
        c.insert_resource(&mut net, "kept", "uri://kept", &["rock", "jazz"])
            .unwrap();
        c.leave(&mut net).unwrap();

        // The departed client refuses further work, with the distinct
        // error and without touching the network.
        let err = c.search_step(&mut net, "rock").unwrap_err();
        assert!(matches!(err, DharmaError::NodeUnavailable(_)));
        assert!(matches!(
            c.leave(&mut net).unwrap_err(),
            DharmaError::NodeUnavailable(_)
        ));

        // The data it wrote (and any replicas it held) survives: another
        // client still resolves everything.
        let mut other = client(ApproxPolicy::EXACT, 7);
        let (nbrs, res, _) = other.search_step(&mut net, "rock").unwrap();
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].0, "kept");
        assert_eq!(nbrs.entries.len(), 1);
        assert_eq!(nbrs.entries[0].0, "jazz");
        let (uri, _) = other.resolve_uri(&mut net, "kept").unwrap();
        assert!(uri.is_some(), "the URI record survives the departure");
    }

    #[test]
    fn tagging_unknown_resource_creates_degenerate_entry() {
        // The paper's Tag(r, t) assumes r exists; the blind first append
        // means an unknown name simply becomes a one-tag resource (no
        // pre-flight existence lookup — that would break Table I's constant).
        let mut net = overlay(8, 16);
        let mut c = client(ApproxPolicy::EXACT, 1);
        let receipt = c.tag(&mut net, "ghost", "rock").unwrap();
        assert_eq!(receipt.neighborhood, 0);
        assert!(receipt.newly_attached);
        assert_eq!(receipt.cost.lookups, 4);
    }
}
