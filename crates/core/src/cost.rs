//! Lookup-cost accounting (Table I).
//!
//! The paper measures primitive costs in **overlay lookups**: one lookup =
//! one PUT/GET/APPEND operation against the DHT (each internally costing
//! `O(log n)` routing messages). [`OpCost`] is the receipt every client
//! primitive returns; [`CostBook`] aggregates them per primitive so the
//! Table I experiment can print observed-vs-formula rows.

use dharma_types::FxHashMap;

/// The DHARMA primitives of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// `Insert(r, t₁…tₘ)` — publish a new resource.
    Insert,
    /// `Tag(r, t)` — attach a tag to an existing resource.
    Tag,
    /// One faceted-search step.
    SearchStep,
}

impl OpKind {
    /// Human-readable name, matching the paper's table header.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "Insert (r, t1..m)",
            OpKind::Tag => "Tag (r,t)",
            OpKind::SearchStep => "Search step",
        }
    }
}

/// The cost receipt of one client primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Overlay lookups performed (the paper's metric). A GET served from a
    /// hot-block cache still counts as one lookup — Table I's contracts are
    /// about how many DHT operations a primitive *issues*, not how far each
    /// one travels — so these formulas hold with or without caching.
    pub lookups: u32,
    /// Datagrams sent across all those lookups (transport-level detail).
    pub messages: u64,
    /// Of the lookups, how many GETs were answered from a hot-block cache
    /// (the home node's own or one met on the lookup path). Always 0 when
    /// the overlay runs cache-disabled.
    pub cache_hits: u64,
}

impl OpCost {
    /// Adds another receipt into this one.
    pub fn absorb(&mut self, other: OpCost) {
        self.lookups += other.lookups;
        self.messages += other.messages;
        self.cache_hits += other.cache_hits;
    }
}

/// Aggregated per-primitive cost statistics.
#[derive(Clone, Debug, Default)]
pub struct CostBook {
    // (ops, lookups, messages, cache hits)
    per_kind: FxHashMap<OpKind, (u64, u64, u64, u64)>,
}

impl CostBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation's receipt.
    pub fn record(&mut self, kind: OpKind, cost: OpCost) {
        let slot = self.per_kind.entry(kind).or_insert((0, 0, 0, 0));
        slot.0 += 1;
        slot.1 += u64::from(cost.lookups);
        slot.2 += cost.messages;
        slot.3 += cost.cache_hits;
    }

    /// `(operations, total lookups, total messages)` for a primitive.
    pub fn totals(&self, kind: OpKind) -> (u64, u64, u64) {
        self.per_kind
            .get(&kind)
            .map(|&(ops, lookups, msgs, _)| (ops, lookups, msgs))
            .unwrap_or((0, 0, 0))
    }

    /// Total cache-served lookups recorded for a primitive.
    pub fn cache_hits(&self, kind: OpKind) -> u64 {
        self.per_kind.get(&kind).map(|t| t.3).unwrap_or(0)
    }

    /// Share of a primitive's lookups served from a cache (0 when none
    /// were recorded — including in cache-disabled runs).
    pub fn cache_hit_share(&self, kind: OpKind) -> f64 {
        let (_, lookups, _) = self.totals(kind);
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits(kind) as f64 / lookups as f64
        }
    }

    /// Mean lookups per operation of a primitive.
    pub fn mean_lookups(&self, kind: OpKind) -> f64 {
        let (ops, lookups, _) = self.totals(kind);
        if ops == 0 {
            0.0
        } else {
            lookups as f64 / ops as f64
        }
    }

    /// Mean messages per operation of a primitive.
    pub fn mean_messages(&self, kind: OpKind) -> f64 {
        let (ops, _, msgs) = self.totals(kind);
        if ops == 0 {
            0.0
        } else {
            msgs as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipts_accumulate() {
        let mut book = CostBook::new();
        book.record(
            OpKind::Insert,
            OpCost {
                lookups: 6,
                messages: 40,
                cache_hits: 0,
            },
        );
        book.record(
            OpKind::Insert,
            OpCost {
                lookups: 8,
                messages: 60,
                cache_hits: 1,
            },
        );
        book.record(
            OpKind::SearchStep,
            OpCost {
                lookups: 2,
                messages: 10,
                cache_hits: 2,
            },
        );
        assert_eq!(book.totals(OpKind::Insert), (2, 14, 100));
        assert!((book.mean_lookups(OpKind::Insert) - 7.0).abs() < 1e-12);
        assert!((book.mean_messages(OpKind::SearchStep) - 10.0).abs() < 1e-12);
        assert_eq!(book.totals(OpKind::Tag), (0, 0, 0));
        assert_eq!(book.mean_lookups(OpKind::Tag), 0.0);
        assert_eq!(book.cache_hits(OpKind::Insert), 1);
        assert_eq!(book.cache_hits(OpKind::Tag), 0);
        assert!((book.cache_hit_share(OpKind::SearchStep) - 1.0).abs() < 1e-12);
        assert_eq!(book.cache_hit_share(OpKind::Tag), 0.0);
    }

    #[test]
    fn opcost_absorb() {
        let mut a = OpCost {
            lookups: 1,
            messages: 5,
            cache_hits: 1,
        };
        a.absorb(OpCost {
            lookups: 2,
            messages: 7,
            cache_hits: 0,
        });
        assert_eq!(
            a,
            OpCost {
                lookups: 3,
                messages: 12,
                cache_hits: 1
            }
        );
    }
}
