//! **DHARMA** — *DHT-based Approach for Resource Mapping through
//! Approximation* (Aiello, Milanesio, Ruffo, Schifanella; arXiv:1101.3761).
//!
//! This crate is the paper's primary contribution: a collaborative tagging
//! system with faceted search deployed on a Kademlia/Likir overlay. The
//! folksonomy graphs of §III are shredded into four kinds of *blocks*, each
//! stored under `SHA1(name ‖ type)`:
//!
//! | block | key | content |
//! |---|---|---|
//! | `r̄` | `H(r ‖ "1")` | `{(t, u(t, r))}` — the tags of resource `r` |
//! | `t̄` | `H(t ‖ "2")` | `{(r, u(t, r))}` — the resources of tag `t` |
//! | `t̂` | `H(t ‖ "3")` | `{(t', sim(t, t'))}` — the FG neighbors of `t` |
//! | `r̃` | `H(r ‖ "4")` | the resource URI (a Likir-signed record) |
//!
//! [`client::DharmaClient`] implements the three primitives with exactly the
//! lookup complexity of Table I:
//!
//! * **Insert(r, t₁…tₘ)** — `2 + 2m` lookups;
//! * **Tag(r, t)** — `4 + |Tags(r)|` naive, `4 + k` under Approximation A;
//! * **Search step** — `2` lookups (filtered `GET t̂` + `GET t̄`).
//!
//! Every operation returns an [`cost::OpCost`] receipt; integration tests
//! assert the Table I formulas hold *exactly*.
//!
//! [`search::DhtFacetedSearch`] runs the §III-C narrowing process over the
//! DHT, with the index-side filtering of §V-A (top-`N` by weight within one
//! UDP payload) applied by the storing nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cost;
pub mod search;

#[cfg(test)]
pub(crate) mod testutil;

pub use client::{Consistency, DharmaClient, DharmaConfig, DharmaConfigBuilder, SessionToken};
pub use cost::{CostBook, OpCost, OpKind};
pub use dharma_folksonomy::{ApproxPolicy, BPolicy};
pub use search::DhtFacetedSearch;
