//! Shared test helpers (test builds only).

use dharma_kademlia::{KadConfig, KademliaNode};
use dharma_net::{SimConfig, SimNet};
use dharma_types::Id160;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds and bootstraps an `n`-node overlay with fast links and a large
/// MTU (tests focus on protocol behaviour, not payload limits).
pub(crate) fn overlay(n: usize, seed: u64) -> SimNet<KademliaNode> {
    let mut net = SimNet::new(SimConfig {
        latency_min_us: 1_000,
        latency_max_us: 8_000,
        drop_rate: 0.0,
        mtu: 64 * 1024,
        seed,
        shards: 1,
        topology: None,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = KadConfig {
        k: 8,
        alpha: 3,
        rpc_timeout_us: 300_000,
        reply_budget: 60_000,
        counters: net.counters(),
        ..KadConfig::default()
    };
    let mut first = None;
    for i in 0..n {
        let id = Id160::random(&mut rng);
        let node = KademliaNode::new(id, i as u32, cfg.clone());
        let addr = net.add_node(node);
        if let Some(seed_contact) = &first {
            net.node_mut(addr)
                .add_seed(dharma_kademlia::Contact::clone(seed_contact));
            net.with_node(addr, |node, ctx| {
                node.bootstrap(ctx);
            });
        } else {
            first = Some(net.node(addr).contact().clone());
        }
    }
    net.run_until_idle(5_000_000);
    net.take_completions();
    net
}
