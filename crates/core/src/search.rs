//! Faceted search over the DHT (paper §III-C executed via §IV-A lookups).
//!
//! Each step fetches two blocks of the selected tag — `t̂` (neighbors,
//! filtered index-side to the top `N` by `sim`) and `t̄` (resources) — and
//! narrows the running candidate and result sets **locally**, exactly as the
//! paper prescribes ("intersection with tag and resources set retrieved in
//! following steps are performed locally"). Cost: 2 lookups per step.

use dharma_kademlia::KademliaNode;
use dharma_net::SimNet;
use dharma_types::{FxHashMap, FxHashSet, Result};

use crate::client::DharmaClient;
use crate::cost::OpCost;

/// A running faceted-search session over the DHT.
pub struct DhtFacetedSearch {
    /// Candidate tags with their `sim(current, ·)` weights, weight-sorted.
    candidates: Vec<(String, u64)>,
    /// The running resource set `Rᵢ`.
    resources: FxHashSet<String>,
    /// Tags already chosen (never shown again).
    chosen: Vec<String>,
    /// Accumulated lookup cost.
    cost: OpCost,
}

impl DhtFacetedSearch {
    /// Starts a search at seed tag `t0`. Costs 2 lookups.
    pub fn start(
        client: &mut DharmaClient,
        net: &mut SimNet<KademliaNode>,
        t0: &str,
    ) -> Result<Self> {
        let (nbrs, res, cost) = client.search_step(net, t0)?;
        let mut candidates = nbrs.entries;
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(DhtFacetedSearch {
            candidates,
            resources: res.entries.into_iter().map(|(n, _)| n).collect(),
            chosen: vec![t0.to_owned()],
            cost,
        })
    }

    /// The tags currently displayed to the user (`Tᵢ`), best first.
    pub fn displayed(&self) -> &[(String, u64)] {
        &self.candidates
    }

    /// The current result set `Rᵢ`.
    pub fn resources(&self) -> &FxHashSet<String> {
        &self.resources
    }

    /// The selection path so far.
    pub fn path(&self) -> &[String] {
        &self.chosen
    }

    /// Total lookups spent (2 per step).
    pub fn cost(&self) -> OpCost {
        self.cost
    }

    /// Selects `tag` from the displayed candidates and narrows both sets.
    /// Costs 2 lookups. Returns `(|Tᵢ|, |Rᵢ|)` after narrowing.
    pub fn select(
        &mut self,
        client: &mut DharmaClient,
        net: &mut SimNet<KademliaNode>,
        tag: &str,
    ) -> Result<(usize, usize)> {
        debug_assert!(
            self.candidates.iter().any(|(n, _)| n == tag),
            "selected tag must be among the displayed candidates"
        );
        let (nbrs, res, cost) = client.search_step(net, tag)?;
        self.cost.absorb(cost);
        self.chosen.push(tag.to_owned());

        // Tᵢ = Tᵢ₋₁ ∩ fetched(t̂) \ chosen, re-ranked by sim(tag, ·).
        let fetched: FxHashMap<String, u64> = nbrs.entries.into_iter().collect();
        let mut narrowed: Vec<(String, u64)> = self
            .candidates
            .drain(..)
            .filter(|(n, _)| n != tag && !self.chosen.contains(n))
            .filter_map(|(n, _)| fetched.get(&n).map(|&w| (n, w)))
            .collect();
        narrowed.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.candidates = narrowed;

        // Rᵢ = Rᵢ₋₁ ∩ Res(tag).
        let fetched_res: FxHashSet<String> = res.entries.into_iter().map(|(n, _)| n).collect();
        self.resources.retain(|r| fetched_res.contains(r));

        Ok((self.candidates.len(), self.resources.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DharmaClient, DharmaConfig};
    use crate::testutil::overlay;
    use dharma_folksonomy::ApproxPolicy;
    use dharma_likir::CertificationAuthority;

    fn client(home: u32) -> DharmaClient {
        let ca = CertificationAuthority::new(b"dharma-tests");
        DharmaClient::new(
            home,
            ca.register("alice", 0),
            DharmaConfig::builder()
                .policy(ApproxPolicy::EXACT)
                .build()
                .expect("search test client config is in range"),
        )
    }

    #[test]
    fn end_to_end_narrowing() {
        let mut net = overlay(16, 20);
        let mut c = client(1);
        // Small corpus: everything is "music"; two genres split it.
        c.insert_resource(
            &mut net,
            "nevermind",
            "uri://1",
            &["music", "rock", "grunge"],
        )
        .unwrap();
        c.insert_resource(
            &mut net,
            "master-of-puppets",
            "uri://2",
            &["music", "rock", "metal"],
        )
        .unwrap();
        c.insert_resource(&mut net, "kind-of-blue", "uri://3", &["music", "jazz"])
            .unwrap();

        let mut s = DhtFacetedSearch::start(&mut c, &mut net, "music").unwrap();
        assert_eq!(s.resources().len(), 3);
        let displayed: Vec<&str> = s.displayed().iter().map(|(n, _)| n.as_str()).collect();
        assert!(displayed.contains(&"rock") && displayed.contains(&"jazz"));
        assert_eq!(s.cost().lookups, 2);

        let (tags_left, res_left) = s.select(&mut c, &mut net, "rock").unwrap();
        assert_eq!(res_left, 2, "rock narrows to the two rock albums");
        // grunge and metal remain candidates; jazz does not co-occur.
        assert_eq!(tags_left, 2);
        assert_eq!(s.cost().lookups, 4);

        let (_tags_left, res_left) = s.select(&mut c, &mut net, "grunge").unwrap();
        assert_eq!(res_left, 1);
        assert!(s.resources().contains("nevermind"));
        assert_eq!(s.path(), &["music", "rock", "grunge"]);
    }

    #[test]
    fn chosen_tags_are_excluded_from_candidates() {
        let mut net = overlay(12, 21);
        let mut c = client(2);
        c.insert_resource(&mut net, "r1", "u", &["a", "b", "c"])
            .unwrap();
        c.insert_resource(&mut net, "r2", "u", &["a", "b"]).unwrap();
        let mut s = DhtFacetedSearch::start(&mut c, &mut net, "a").unwrap();
        s.select(&mut c, &mut net, "b").unwrap();
        assert!(
            !s.displayed().iter().any(|(n, _)| n == "a" || n == "b"),
            "chosen tags must not reappear"
        );
    }

    #[test]
    fn unknown_seed_gives_empty_session() {
        let mut net = overlay(8, 22);
        let mut c = client(1);
        let s = DhtFacetedSearch::start(&mut c, &mut net, "nothing").unwrap();
        assert!(s.displayed().is_empty());
        assert!(s.resources().is_empty());
    }
}
