//! Property tests for the session-guarantee client API.
//!
//! Two contracts are exercised over randomized overlays, workloads, and
//! failure schedules:
//!
//! 1. **Session floors hold under churn + cache serving.** Whatever the
//!    mix of writes, cached reads, crashes, and revivals, a successful
//!    session-level read (`ReadYourWrites` / `MonotonicReads`) never
//!    serves a stamp below the session floor observed before the call —
//!    and because every served read raises the floor, the same assertion
//!    proves monotonic reads never regress. Refusing with
//!    `DharmaError::StaleRead` (or timing out under churn) is the
//!    permitted degraded outcome; a silent below-floor serve is the bug.
//!
//! 2. **`InvalidatePush` loss degrades gracefully.** With write-triggered
//!    invalidation push enabled and datagrams dropped at a random rate,
//!    lost pushes may cost freshness (the cached view ages toward the
//!    gossip/TTL bounds) but never correctness: the same floor invariant
//!    holds at every loss rate, and at zero loss the session reads must
//!    actually succeed — the contract is not allowed to hold vacuously.

use dharma_cache::{CacheConfig, FreshConfig};
use dharma_core::{Consistency, DharmaClient, DharmaConfig};
use dharma_kademlia::{KadConfig, KademliaNode};
use dharma_likir::CertificationAuthority;
use dharma_net::{SimConfig, SimNet};
use dharma_types::{block_key, BlockType, DharmaError, Id160, VersionStamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds and bootstraps an `n`-node overlay with per-node hot caches and
/// (optionally) the freshness subsystem, so reads get cached and writes
/// leave stale views behind — the terrain the session floor defends.
fn overlay(
    n: usize,
    seed: u64,
    drop_rate: f64,
    fresh: Option<FreshConfig>,
) -> SimNet<KademliaNode> {
    let mut net = SimNet::new(SimConfig {
        latency_min_us: 1_000,
        latency_max_us: 8_000,
        drop_rate,
        mtu: 64 * 1024,
        seed,
        shards: 1,
        topology: None,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = KadConfig {
        k: 8,
        alpha: 3,
        rpc_timeout_us: 300_000,
        reply_budget: 60_000,
        cache: Some(CacheConfig::default()),
        freshness: fresh,
        counters: net.counters(),
        ..KadConfig::default()
    };
    let mut first = None;
    for i in 0..n {
        let id = Id160::random(&mut rng);
        let node = KademliaNode::new(id, i as u32, cfg.clone());
        let addr = net.add_node(node);
        if let Some(seed_contact) = &first {
            net.node_mut(addr)
                .add_seed(dharma_kademlia::Contact::clone(seed_contact));
            net.with_node(addr, |node, ctx| {
                node.bootstrap(ctx);
            });
        } else {
            first = Some(net.node(addr).contact().clone());
        }
    }
    net.run_until_idle(5_000_000);
    net.take_completions();
    net
}

fn client(name: &str, home: u32) -> DharmaClient {
    let ca = CertificationAuthority::new(b"dharma-proptests");
    let identity = ca.register(name, 0);
    DharmaClient::new(home, identity, DharmaConfig::default())
}

/// The freshness configuration with write-triggered invalidation push on.
fn push_fresh(fanout: usize) -> FreshConfig {
    FreshConfig::builder()
        .push_on_write(true)
        .push_fanout(fanout)
        .build()
        .expect("push config is in range")
}

/// Issues one session-level read and checks the floor contract around it:
/// a success must serve at or above the pre-read floor (`None` only under
/// a zero floor), a `StaleRead` refusal or a churn casualty is graceful,
/// and the floor itself only ever rises. Returns whether the read served.
fn checked_session_read(
    c: &mut DharmaClient,
    net: &mut SimNet<KademliaNode>,
    key: Id160,
    level: Consistency,
) -> bool {
    let floor_before = c.session().floor(&key);
    let served = match c.get_stamped(net, key, 0, level) {
        Ok((Some((_view, stamp)), _)) => {
            prop_assert!(
                stamp >= floor_before,
                "{level:?} read served stamp {stamp:?} below the session floor {floor_before:?}"
            );
            true
        }
        Ok((None, _)) => {
            prop_assert!(
                floor_before.is_zero(),
                "{level:?} read served nothing under the nonzero floor {floor_before:?}"
            );
            false
        }
        // Refusing to go back in time is the contract's graceful outcome;
        // timeouts and dead coordinators are churn/loss casualties, not
        // consistency violations.
        Err(DharmaError::StaleRead(_)) | Err(_) => false,
    };
    let floor_after = c.session().floor(&key);
    prop_assert!(
        floor_after >= floor_before,
        "the session floor regressed: {floor_before:?} -> {floor_after:?}"
    );
    served
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1: random interleavings of writes, session reads from two
    /// clients (one resuming the other's session), cached eventual reads,
    /// and crash/revive churn. No successful session read ever dips below
    /// its own pre-read floor, and floors are monotone throughout.
    #[test]
    fn session_reads_never_go_below_the_session_floor(
        seed in 0u64..(1 << 48),
        script in proptest::collection::vec((0u8..5, any::<u8>()), 4..12),
    ) {
        let n = 18usize;
        let mut net = overlay(n, seed, 0.0, Some(push_fresh(4)));
        let mut writer = client("writer", 1);
        let mut reader = client("reader", 2);
        let r_bar = block_key("res", BlockType::ResourceTags);

        // Pre-churn anchor: with every node up the guarantee must hold
        // non-vacuously — the insert raises the floor and the session
        // read serves at or above it.
        prop_assert!(writer.insert_resource(&mut net, "res", "uri://r", &["t0"]).is_ok());
        prop_assert!(
            checked_session_read(&mut writer, &mut net, r_bar, Consistency::ReadYourWrites),
            "with no churn the session read must serve"
        );

        let mut crashed: Vec<u32> = Vec::new();
        for (op, idx) in script {
            match op {
                // A write from the session owner; churn may legitimately
                // fail it (no ack quorum), which must not poison the
                // floor — checked by every read below.
                0 => {
                    let _ = writer.tag(&mut net, "res", &format!("t{idx}"));
                }
                // Crash a node that is neither client's home (a dead home
                // fails fast with NodeUnavailable, tested elsewhere), or
                // revive the longest-crashed one.
                1 => {
                    if crashed.len() >= 3 || (idx % 2 == 0 && !crashed.is_empty()) {
                        net.revive(crashed.remove(0));
                    } else {
                        let victim = 3 + u32::from(idx) % (n as u32 - 3);
                        if !crashed.contains(&victim) {
                            net.crash(victim);
                            crashed.push(victim);
                        }
                    }
                }
                2 => {
                    checked_session_read(&mut writer, &mut net, r_bar, Consistency::ReadYourWrites);
                }
                // The handoff path: the reader resumes the writer's
                // session, so its floor now includes writes it never made.
                3 => {
                    reader.import_session(writer.session());
                    checked_session_read(&mut reader, &mut net, r_bar, Consistency::MonotonicReads);
                }
                // Eventual reads pin (possibly stale) views into caches
                // along the path — the terrain session reads must not
                // trust — and still observe into the floor.
                _ => {
                    checked_session_read(&mut reader, &mut net, r_bar, Consistency::Eventual);
                }
            }
        }

        // Full recovery: every node back up, the floor still binding.
        for addr in crashed {
            net.revive(addr);
        }
        checked_session_read(&mut writer, &mut net, r_bar, Consistency::ReadYourWrites);
        checked_session_read(&mut reader, &mut net, r_bar, Consistency::MonotonicReads);
    }

    /// Contract 2: invalidation-push datagrams (like all others) are
    /// dropped at a random rate. Lost pushes cost only freshness — the
    /// floor contract holds at every rate, and at zero loss the session
    /// reads must succeed outright, so the property cannot pass by
    /// refusing every read.
    #[test]
    fn invalidate_push_loss_never_yields_a_wrong_serve(
        seed in 0u64..(1 << 48),
        drop_rate in prop_oneof![Just(0.0), 0.02f64..0.25],
        fanout in 1usize..6,
        rounds in 2usize..6,
    ) {
        let mut net = overlay(18, seed, drop_rate, Some(push_fresh(fanout)));
        let mut writer = client("writer", 1);
        let mut reader = client("reader", 2);
        let mut audit = client("audit", 3);
        let r_bar = block_key("res", BlockType::ResourceTags);
        if writer.insert_resource(&mut net, "res", "uri://r", &["w0"]).is_err() {
            // Heavy loss can starve the very first write of its quorum;
            // nothing was observed, so there is nothing to guarantee.
            prop_assume!(drop_rate > 0.0);
            return;
        }

        for round in 0..rounds {
            // The reader's eventual read registers it as a recent fetcher
            // and pins the pre-write view in caches along the path…
            checked_session_read(&mut reader, &mut net, r_bar, Consistency::Eventual);
            // …the write then push-invalidates those fetchers (datagrams
            // that may all be lost at this drop rate)…
            let wrote = writer.tag(&mut net, "res", &format!("w{}", round + 1)).is_ok();
            // …and whatever arrived, neither session level may serve
            // below its floor afterwards.
            let monotone =
                checked_session_read(&mut reader, &mut net, r_bar, Consistency::MonotonicReads);
            audit.import_session(writer.session());
            let ryw =
                checked_session_read(&mut audit, &mut net, r_bar, Consistency::ReadYourWrites);
            if drop_rate == 0.0 {
                prop_assert!(wrote, "lossless write must complete");
                prop_assert!(
                    monotone && ryw,
                    "lossless session reads must serve, not refuse (round {round})"
                );
            }
        }

        // Graceful degradation, not wrongness: after the network settles
        // (gossip and revalidation have caught up), a session read that
        // succeeds still sits at or above everything the audit session
        // observed through the writer's receipts.
        net.run_until_idle(10_000_000);
        net.take_completions();
        audit.import_session(writer.session());
        checked_session_read(&mut audit, &mut net, r_bar, Consistency::ReadYourWrites);
    }
}

/// The stamp-ordering fact the floor contract leans on, pinned here so a
/// refactor of `VersionStamp` ordering breaks loudly next to the session
/// tests that depend on it: floors are pointwise maxima, so `observe` is
/// commutative and idempotent.
#[test]
fn session_token_floor_is_a_pointwise_max() {
    use dharma_core::SessionToken;
    let key = block_key("res", BlockType::ResourceTags);
    let low = VersionStamp::new(3, dharma_types::sha1(b"a"));
    let high = VersionStamp::new(7, dharma_types::sha1(b"b"));
    let mut forward = SessionToken::default();
    forward.observe(key, low);
    forward.observe(key, high);
    let mut backward = SessionToken::default();
    backward.observe(key, high);
    backward.observe(key, low);
    assert_eq!(forward.floor(&key), high);
    assert_eq!(backward.floor(&key), high);
    backward.observe(key, high);
    assert_eq!(backward.floor(&key), high, "idempotent");
}
