//! Property tests for the hot-block cache and the popularity estimator:
//! capacity can never be exceeded, lookups agree with a reference model,
//! invalidation is total per key, and decayed weights stay finite and
//! monotone under decay.

use dharma_cache::{
    CacheConfig, FreqSketch, FreshnessBook, HotCache, PopularityConfig, PopularityEstimator,
};
use dharma_types::{sha1, VersionStamp};
use proptest::prelude::*;

use std::collections::BTreeMap;

/// Stamps a model version as an origin stamp from a fixed writer, so the
/// `u64` reference model and the stamp-typed cache order identically.
fn st(seq: u64) -> VersionStamp {
    VersionStamp::new(seq, sha1(b"writer"))
}

/// One step of the randomized cache workout.
#[derive(Clone, Debug)]
enum Op {
    Insert { key: u8, top_n: u8, version: u64 },
    Get { key: u8, top_n: u8 },
    Invalidate { key: u8 },
    Remove { key: u8, top_n: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..4, any::<u64>()).prop_map(|(key, top_n, version)| Op::Insert {
            key,
            top_n,
            version
        }),
        (any::<u8>(), 0u8..4).prop_map(|(key, top_n)| Op::Get { key, top_n }),
        any::<u8>().prop_map(|key| Op::Invalidate { key }),
        (any::<u8>(), 0u8..4).prop_map(|(key, top_n)| Op::Remove { key, top_n }),
    ]
}

proptest! {
    /// The cache never holds more than `capacity` entries, through any
    /// sequence of inserts, hits, invalidations and removals — and its
    /// internal slab never grows beyond the live set either (slots are
    /// recycled, not leaked).
    #[test]
    fn occupancy_never_exceeds_capacity(
        capacity in 0usize..12,
        ops in proptest::collection::vec(arb_op(), 1..400),
    ) {
        let mut cache: HotCache<u64> = HotCache::new(CacheConfig {
            capacity,
            ttl_us: u64::MAX,
        });
        let mut now = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            now += 1;
            match op {
                Op::Insert { key, top_n, version } => {
                    cache.insert((sha1(&[key]), u32::from(top_n)), st(version), i as u64, now);
                }
                Op::Get { key, top_n } => {
                    let _ = cache.get(&(sha1(&[key]), u32::from(top_n)), now);
                }
                Op::Invalidate { key } => {
                    cache.invalidate_key(&sha1(&[key]));
                }
                Op::Remove { key, top_n } => {
                    cache.remove(&(sha1(&[key]), u32::from(top_n)));
                }
            }
            prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
        }
    }

    /// Against a reference model (a map updated with last-writer-wins on
    /// version): whenever the cache returns a value, the model holds that
    /// key, the value matches one the model accepted, and the version tag
    /// is never newer than the newest offered. After an invalidation the
    /// key is gone in both.
    #[test]
    fn lookups_agree_with_a_reference_model(
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        // Capacity larger than the key universe: no evictions, so the
        // model is exact (eviction-freedom is what makes it comparable).
        let mut cache: HotCache<u64> = HotCache::new(CacheConfig {
            capacity: 2048,
            ttl_us: u64::MAX,
        });
        let mut model: BTreeMap<(u8, u8), (u64, u64)> = BTreeMap::new();
        let mut now = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            now += 1;
            let val = i as u64;
            match op {
                Op::Insert { key, top_n, version } => {
                    cache.insert((sha1(&[key]), u32::from(top_n)), st(version), val, now);
                    let slot = model.entry((key, top_n)).or_insert((version, val));
                    if version >= slot.0 {
                        *slot = (version, val);
                    }
                }
                Op::Get { key, top_n } => {
                    let got = cache.get(&(sha1(&[key]), u32::from(top_n)), now);
                    let expect = model.get(&(key, top_n));
                    match (got, expect) {
                        (Some((v, ver)), Some(&(mver, mv))) => {
                            prop_assert_eq!(v, mv);
                            prop_assert_eq!(ver, st(mver));
                        }
                        (Some(_), None) => prop_assert!(false, "cache returned an invalidated key"),
                        (None, _) => {} // misses are always allowed
                    }
                }
                Op::Invalidate { key } => {
                    cache.invalidate_key(&sha1(&[key]));
                    model.retain(|&(k, _), _| k != key);
                }
                Op::Remove { key, top_n } => {
                    cache.remove(&(sha1(&[key]), u32::from(top_n)));
                    model.remove(&(key, top_n));
                }
            }
        }
    }

    /// **Monotone freshness** (the `dharma-fresh` revalidation contract):
    /// driving a `HotCache` and a `FreshnessBook` exactly the way the
    /// overlay node does — digests note the book then drop-or-confirm
    /// cached views, lookups consult the book's `admits` gate before
    /// serving, refused views are dropped — a served cached view's version
    /// is **never** below the highest digest version the node has seen for
    /// that key, under any interleaving of inserts, digests and reads.
    #[test]
    fn revalidation_never_serves_below_the_highest_digest(
        ops in proptest::collection::vec(
            // (kind % 3: insert/digest/get, key, top_n, version)
            (0u8..3, 0u8..6, 0u8..3, 0u64..32),
            1..400,
        ),
        max_lifetime in 1u64..5_000,
    ) {
        let mut cache: HotCache<u64> = HotCache::new(CacheConfig {
            capacity: 2048,
            ttl_us: 1_000,
        });
        let mut book = FreshnessBook::new(0); // unbounded: the exact bound
        let mut highest: BTreeMap<u8, u64> = BTreeMap::new();
        let mut now = 0u64;
        for (i, (kind, key, top_n, version)) in ops.into_iter().enumerate() {
            now += 7;
            let id = sha1(&[key]);
            let ck = (id, u32::from(top_n));
            match kind {
                // A view read from the network is offered for caching —
                // possibly *below* the highest digest already seen (a late
                // reply from a lagging holder); the serve-time gate must
                // cover that case.
                0 => {
                    cache.insert(ck, st(version), i as u64, now);
                }
                // A digest arrives: note the book, then reconcile exactly
                // like `KademliaNode::absorb_digest`.
                1 => {
                    book.note(id, st(version));
                    let h = highest.entry(key).or_insert(0);
                    *h = (*h).max(version);
                    let dropped = cache.invalidate_stale(&id, st(version));
                    if dropped.is_empty() {
                        cache.confirm_fresh(&id, st(version), now, max_lifetime);
                    }
                }
                // A read: serve only through the gate, dropping refusals.
                _ => {
                    if let Some((_, served_version)) = cache.get(&ck, now) {
                        if book.admits(&id, served_version) {
                            let bound = st(highest.get(&key).copied().unwrap_or(0));
                            prop_assert!(
                                served_version >= bound,
                                "served {:?} below highest digest {:?} for key {}",
                                served_version, bound, key
                            );
                        } else {
                            let bound = book.highest(&id).unwrap_or(VersionStamp::ZERO);
                            cache.invalidate_stale(&id, bound);
                        }
                    }
                }
            }
        }
    }

    /// TTL expiry is exact: a view inserted at `t` serves at `t + ttl` and
    /// is gone at `t + ttl + 1`.
    #[test]
    fn ttl_boundary_is_exact(ttl in 1u64..1_000_000, key in any::<u8>()) {
        let mut cache: HotCache<u64> = HotCache::new(CacheConfig { capacity: 4, ttl_us: ttl });
        let k = (sha1(&[key]), 0u32);
        cache.insert(k, st(1), 7, 0);
        prop_assert!(cache.get(&k, ttl).is_some());
        prop_assert!(cache.get(&k, ttl + 1).is_none());
        prop_assert!(cache.is_empty());
    }

    /// The frequency sketch never loses more than aging allows: a key
    /// touched `n` times estimates at least `min(n, 15) / 2` (one halving),
    /// and estimates are monotone in touches.
    #[test]
    fn sketch_estimates_track_touches(n in 1u32..32, key in any::<u64>()) {
        let mut sketch = FreqSketch::with_capacity(64);
        let mut last = 0u8;
        for i in 0..n {
            sketch.touch(key);
            let est = sketch.estimate(key);
            prop_assert!(
                est + 1 >= last,
                "estimate dropped from {} to {} at touch {}",
                last, est, i + 1
            );
            last = est;
        }
        prop_assert!(u32::from(sketch.estimate(key)) >= n.min(15) / 2);
    }

    /// Decay only shrinks weights, never below zero, and `extra_replicas`
    /// respects its cap for arbitrary arrival patterns.
    #[test]
    fn popularity_decays_monotonically(
        arrivals in proptest::collection::vec(0u64..10_000_000, 1..100),
        cap in 1usize..8,
    ) {
        let mut est = PopularityEstimator::new(PopularityConfig {
            half_life_us: 1_000_000,
            hot_threshold: 2.0,
            max_extra_replicas: cap,
            max_tracked: 256,
            promote_cooldown_us: 0,
        });
        let key = sha1(b"k");
        let mut times: Vec<u64> = arrivals;
        times.sort_unstable();
        let mut last_t = 0u64;
        for &t in &times {
            est.record(key, t);
            last_t = t;
        }
        let w0 = est.weight(&key, last_t);
        prop_assert!(w0.is_finite() && w0 >= 0.0);
        prop_assert!(w0 <= times.len() as f64 + 1e-9, "weight cannot exceed arrivals");
        // Pure decay afterwards: weight is non-increasing.
        let mut prev = w0;
        for dt in [1u64, 10, 1_000, 1_000_000, 100_000_000] {
            let w = est.weight(&key, last_t + dt);
            prop_assert!(w <= prev + 1e-12);
            prev = w;
        }
        prop_assert!(est.extra_replicas(&key, last_t) <= cap);
    }
}
