//! Hot-block caching and adaptive replication for the DHARMA overlay.
//!
//! The folksonomy workload is Zipf-distributed (paper §III): a handful of
//! popular `t̄`/`t̂` blocks attract nearly all GET traffic, which lands on
//! the `k` nodes closest to their keys — the classic DHT hot-spot problem.
//! This crate provides the two standard cures, packaged so that the
//! `dharma-kademlia` node (and any future overlay) can adopt them without
//! new dependencies:
//!
//! * [`HotCache`] — a bounded, per-node cache of filtered block reads keyed
//!   by `(Id160, top_n)`. Admission is TinyLFU-style: a compact
//!   frequency sketch ([`FreqSketch`]) decides whether a candidate is
//!   likelier to be re-read than the eviction victim, and a segmented LRU
//!   (probation + protected) preserves recency within the admitted set.
//!   Entries carry a TTL and the write's **origin stamp**
//!   ([`dharma_types::VersionStamp`]), so a cached view can never survive a
//!   local write to the same key: any token append on the caching node
//!   invalidates its cached views of that key, which preserves
//!   read-your-writes for writers while remote staleness stays bounded by
//!   the TTL — consistent with the commutative token-append semantics,
//!   where a stale view is merely an *older* (never a contradictory) set
//!   of weights.
//!
//! * [`PopularityEstimator`] — an exponentially-decayed per-key arrival
//!   rate. Storage nodes feed every GET arrival into it; keys whose decayed
//!   rate crosses a threshold are *hot* and report a positive
//!   [`PopularityEstimator::extra_replicas`], which the overlay uses to
//!   push idempotent replica snapshots beyond the base `k` (adaptive
//!   replication). Cold keys decay back below the threshold and their
//!   extra replicas age out through the normal record-TTL path.
//!
//! * [`FreshnessBook`] / [`HitHistory`] ([`fresh`], the `dharma-fresh`
//!   subsystem) — the requester-side state of **version gossip** and
//!   **cache-aware lookup routing**: the highest gossiped origin stamp per
//!   key (the monotone-freshness serving gate, plus TTL extension on fresh
//!   confirmations via [`HotCache::confirm_fresh`] and revalidation drops
//!   via [`HotCache::invalidate_stale`]), and a decayed per-peer history of
//!   who recently served each key (warm-peer shortlist seeding).
//!
//! * [`FetcherBook`] ([`fetchers`]) — the holder-side dual for
//!   write-triggered invalidation push: who recently fetched each held
//!   key, so an applied write can notify them directly (bounded fan-out)
//!   instead of waiting for gossip to reach them.
//!
//! Everything here is deterministic and allocation-conscious: the cache is
//! a slab with intrusive lists (no per-op allocation), the sketch is a few
//! kilobytes of packed 4-bit counters, and time is caller-provided
//! microseconds so the discrete-event simulator stays reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fetchers;
pub mod fresh;
pub mod hot;
pub mod popularity;
pub mod sketch;

pub use fetchers::FetcherBook;
pub use fresh::{FreshConfig, FreshConfigBuilder, FreshnessBook, HitHistory};
pub use hot::{CacheConfig, CacheKey, CacheStats, HotCache};
pub use popularity::{PopularityConfig, PopularityEstimator};
pub use sketch::FreqSketch;
