//! Decayed per-key arrival-rate estimation driving adaptive replication.
//!
//! Every GET arrival at a storage node feeds [`PopularityEstimator::record`].
//! The per-key state is a single exponentially-decayed counter: at each
//! arrival the old weight is multiplied by `2^(-Δt / half_life)` and
//! incremented by one, so the weight approximates the number of arrivals in
//! the last half-life window, with older traffic fading geometrically.
//!
//! Keys whose weight crosses `hot_threshold` report a positive
//! [`PopularityEstimator::extra_replicas`] — logarithmic in how far past
//! the threshold they are, so a 2× hotter key earns one more replica, a 4×
//! hotter key two, bounded by `max_extra_replicas`. The overlay consumes
//! this through [`PopularityEstimator::should_promote`], which rate-limits
//! promotion pushes per key to one per cooldown window. Cold keys decay
//! out of the tracking map entirely (it is bounded by `max_tracked`).

use dharma_types::{FxHashMap, Id160};

/// Adaptive-replication parameters.
#[derive(Clone, Debug)]
pub struct PopularityConfig {
    /// Decay half-life of the arrival counter, µs.
    pub half_life_us: u64,
    /// Decayed-weight threshold at which a key counts as hot.
    pub hot_threshold: f64,
    /// Cap on replicas beyond the base `k`.
    pub max_extra_replicas: usize,
    /// Bound on tracked keys; coldest entries are pruned beyond it.
    pub max_tracked: usize,
    /// Minimum µs between replica-promotion pushes for one key.
    pub promote_cooldown_us: u64,
}

impl Default for PopularityConfig {
    fn default() -> Self {
        PopularityConfig {
            half_life_us: 10_000_000, // 10 s
            hot_threshold: 8.0,
            max_extra_replicas: 8,
            max_tracked: 4096,
            promote_cooldown_us: 5_000_000, // 5 s
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Track {
    weight: f64,
    last_us: u64,
    last_promoted_us: Option<u64>,
}

/// Per-node popularity tracker.
#[derive(Clone, Debug)]
pub struct PopularityEstimator {
    cfg: PopularityConfig,
    map: FxHashMap<Id160, Track>,
}

impl PopularityEstimator {
    /// Creates an estimator.
    pub fn new(cfg: PopularityConfig) -> Self {
        PopularityEstimator {
            cfg,
            map: FxHashMap::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PopularityConfig {
        &self.cfg
    }

    /// Number of keys currently tracked.
    pub fn tracked(&self) -> usize {
        self.map.len()
    }

    #[inline]
    fn decay(&self, weight: f64, dt_us: u64) -> f64 {
        if dt_us == 0 {
            return weight;
        }
        weight * (-(dt_us as f64) / self.cfg.half_life_us as f64).exp2()
    }

    /// Records one arrival for `key` at `now_us`; returns the new weight.
    pub fn record(&mut self, key: Id160, now_us: u64) -> f64 {
        let half_life = self.cfg.half_life_us;
        let entry = self.map.entry(key).or_insert(Track {
            weight: 0.0,
            last_us: now_us,
            last_promoted_us: None,
        });
        let dt = now_us.saturating_sub(entry.last_us);
        entry.weight = if dt == 0 {
            entry.weight
        } else {
            entry.weight * (-(dt as f64) / half_life as f64).exp2()
        } + 1.0;
        entry.last_us = now_us;
        let weight = entry.weight;
        if self.map.len() > self.cfg.max_tracked {
            self.prune(now_us, &key);
        }
        weight
    }

    /// The decayed weight of `key` as of `now_us` (0 when untracked).
    pub fn weight(&self, key: &Id160, now_us: u64) -> f64 {
        self.map
            .get(key)
            .map(|t| self.decay(t.weight, now_us.saturating_sub(t.last_us)))
            .unwrap_or(0.0)
    }

    /// True when `key`'s decayed weight exceeds the hot threshold.
    pub fn is_hot(&self, key: &Id160, now_us: u64) -> bool {
        self.weight(key, now_us) >= self.cfg.hot_threshold
    }

    /// How many replicas beyond the base `k` this key currently earns:
    /// `1 + log2(weight / threshold)` when hot, else 0, capped.
    pub fn extra_replicas(&self, key: &Id160, now_us: u64) -> usize {
        let w = self.weight(key, now_us);
        if w < self.cfg.hot_threshold {
            return 0;
        }
        let extra = 1 + (w / self.cfg.hot_threshold).log2().floor() as usize;
        extra.min(self.cfg.max_extra_replicas)
    }

    /// The `n` tracked keys with the highest decayed weight as of
    /// `now_us`, heaviest first (deterministic ties by key). The version
    /// gossip digest uses this: a holder's hottest keys are exactly the
    /// ones most likely cached elsewhere, so their versions are the most
    /// valuable news to piggyback.
    pub fn hottest(&self, n: usize, now_us: u64) -> Vec<Id160> {
        if n == 0 {
            return Vec::new();
        }
        // dharma-lint: allow(D3): selected and sorted by a (weight, key) total order below
        let mut entries: Vec<(Id160, f64)> = self
            .map
            .iter()
            .map(|(k, t)| (*k, self.decay(t.weight, now_us.saturating_sub(t.last_us))))
            .collect();
        // Called per outgoing reply (the version-gossip digest), so keep
        // it O(n) + O(n' log n') on the kept prefix, not a full sort.
        let cmp = |a: &(Id160, f64), b: &(Id160, f64)| {
            b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0))
        };
        if entries.len() > n {
            entries.select_nth_unstable_by(n - 1, cmp);
            entries.truncate(n);
        }
        entries.sort_unstable_by(cmp);
        entries.into_iter().map(|(k, _)| k).collect()
    }

    /// Consumes a promotion opportunity: when `key` is hot and its cooldown
    /// has lapsed, stamps the cooldown and returns how many extra replicas
    /// to push. Returns `None` otherwise (not hot, or too soon).
    pub fn should_promote(&mut self, key: &Id160, now_us: u64) -> Option<usize> {
        let extra = self.extra_replicas(key, now_us);
        if extra == 0 {
            return None;
        }
        let entry = self.map.get_mut(key)?;
        if let Some(last) = entry.last_promoted_us {
            if now_us.saturating_sub(last) < self.cfg.promote_cooldown_us {
                return None;
            }
        }
        entry.last_promoted_us = Some(now_us);
        Some(extra)
    }

    /// Drops keys whose decayed weight has faded to noise. Keeps the map
    /// within `max_tracked` by hard-capping to the heaviest entries if
    /// decay alone is not enough; `protect` (the key just recorded) is
    /// always kept so a warming key can accumulate through full maps.
    fn prune(&mut self, now_us: u64, protect: &Id160) {
        let half_life = self.cfg.half_life_us;
        self.map.retain(|k, t| {
            let dt = now_us.saturating_sub(t.last_us);
            k == protect || t.weight * (-(dt as f64) / half_life as f64).exp2() > 0.05
        });
        if self.map.len() > self.cfg.max_tracked {
            // Degenerate flood of distinct keys: hard-cap to the heaviest
            // `max_tracked` by weight *decayed to now* — raw stored weights
            // favor long-idle keys over actively warming ones (ties broken
            // by key for determinism).
            // dharma-lint: allow(D3): collected then sorted by a (weight, key) total order
            let mut entries: Vec<(Id160, f64)> = self
                .map
                .iter()
                .map(|(k, t)| (*k, self.decay(t.weight, now_us.saturating_sub(t.last_us))))
                .collect();
            entries.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0))
            });
            let keep: dharma_types::FxHashSet<Id160> = entries
                .iter()
                .take(self.cfg.max_tracked)
                .map(|(k, _)| *k)
                .collect();
            self.map.retain(|k, _| k == protect || keep.contains(k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_types::sha1;

    fn est(threshold: f64) -> PopularityEstimator {
        PopularityEstimator::new(PopularityConfig {
            half_life_us: 1_000_000,
            hot_threshold: threshold,
            max_extra_replicas: 4,
            max_tracked: 64,
            promote_cooldown_us: 500_000,
        })
    }

    #[test]
    fn weight_accumulates_and_decays() {
        let mut e = est(4.0);
        let k = sha1(b"k");
        for _ in 0..4 {
            e.record(k, 0);
        }
        assert!((e.weight(&k, 0) - 4.0).abs() < 1e-9);
        // One half-life later, half the weight remains.
        assert!((e.weight(&k, 1_000_000) - 2.0).abs() < 1e-9);
        // Far in the future the key is stone cold.
        assert!(e.weight(&k, 50_000_000) < 1e-9);
    }

    #[test]
    fn hotness_threshold_and_extra_replicas() {
        let mut e = est(4.0);
        let k = sha1(b"k");
        assert_eq!(e.extra_replicas(&k, 0), 0);
        for _ in 0..4 {
            e.record(k, 0);
        }
        assert!(e.is_hot(&k, 0));
        assert_eq!(e.extra_replicas(&k, 0), 1, "at threshold: one extra");
        for _ in 0..12 {
            e.record(k, 0);
        }
        assert_eq!(e.extra_replicas(&k, 0), 3, "16 = 4x threshold: 1+log2(4)");
        // The cap holds no matter how hot.
        for _ in 0..1000 {
            e.record(k, 0);
        }
        assert_eq!(e.extra_replicas(&k, 0), 4);
    }

    #[test]
    fn promotion_respects_cooldown_and_rehotting() {
        let mut e = est(2.0);
        let k = sha1(b"k");
        for _ in 0..4 {
            e.record(k, 0);
        }
        assert!(e.should_promote(&k, 0).is_some());
        assert!(e.should_promote(&k, 100).is_none(), "cooldown");
        assert!(e.should_promote(&k, 600_000).is_some(), "cooldown lapsed");
        // Once cold, no promotion.
        assert!(e.should_promote(&k, 60_000_000).is_none());
    }

    #[test]
    fn hottest_ranks_by_decayed_weight() {
        let mut e = est(4.0);
        let (a, b, c) = (sha1(b"a"), sha1(b"b"), sha1(b"c"));
        for _ in 0..8 {
            e.record(a, 0);
        }
        for _ in 0..4 {
            e.record(b, 0);
        }
        e.record(c, 0);
        assert_eq!(e.hottest(2, 0), vec![a, b]);
        // Recency matters: b recorded later out-decays a.
        for _ in 0..8 {
            e.record(b, 3_000_000);
        }
        assert_eq!(e.hottest(1, 3_000_000), vec![b]);
        assert!(e.hottest(10, 0).len() <= 3);
    }

    #[test]
    fn tracking_is_bounded() {
        let mut e = est(2.0);
        // A flood of one-shot keys at the same instant: pruning by decay
        // removes nothing, so the heaviest-half rule must bound the map.
        for i in 0..500u32 {
            e.record(sha1(&i.to_le_bytes()), i as u64 * 10);
        }
        assert!(e.tracked() <= 65, "tracked = {}", e.tracked());
        // A genuinely hot key survives pruning.
        let hot = sha1(b"hot");
        for _ in 0..50 {
            e.record(hot, 5_000);
        }
        for i in 500..1000u32 {
            e.record(sha1(&i.to_le_bytes()), 5_000);
        }
        assert!(e.weight(&hot, 5_000) > 10.0);
    }
}
