//! Holder-side recent-fetcher tracking for write-triggered invalidation
//! push.
//!
//! When a holder serves a key authoritatively it records who asked; when
//! it later applies a write to that key it pushes an `InvalidatePush` to
//! the most recent fetchers, bounded by the configured fan-out and
//! recency window. The book is the holder-side dual of the requester's
//! `HitHistory`: that one remembers *servers* to route toward, this one
//! remembers *clients* to notify.
//!
//! Everything is deterministic and bounded: per-key fetcher lists are
//! plain vectors ordered by recency (ties by fetcher id), and key
//! eviction is least-recently-touched with ties by key — no hash-order
//! dependence ever escapes (`dharma-lint` D3 also flags any iteration
//! over a `FetcherBook`-typed binding, should one grow).

use dharma_types::{FxHashMap, Id160};

#[derive(Clone, Copy, Debug)]
struct Fetcher {
    id: Id160,
    addr: u32,
    /// The filter width the fetcher asked with — the push echoes it back
    /// so the refreshed view lands in the fetcher's exact cache slot.
    top_n: u32,
    at_us: u64,
}

#[derive(Clone, Debug, Default)]
struct KeyFetchers {
    fetchers: Vec<Fetcher>,
    touched_us: u64,
}

/// Bounded per-key record of who recently fetched each held key.
#[derive(Clone, Debug)]
pub struct FetcherBook {
    max_keys: usize,
    max_per_key: usize,
    window_us: u64,
    keys: FxHashMap<Id160, KeyFetchers>,
}

impl FetcherBook {
    /// A book remembering at most `max_per_key` fetchers for each of at
    /// most `max_keys` keys, forgetting interest older than `window_us`.
    pub fn new(max_keys: usize, max_per_key: usize, window_us: u64) -> Self {
        FetcherBook {
            max_keys: max_keys.max(1),
            max_per_key: max_per_key.max(1),
            window_us: window_us.max(1),
            keys: FxHashMap::default(),
        }
    }

    /// Keys currently tracked.
    pub fn tracked(&self) -> usize {
        self.keys.len()
    }

    /// Records that `fetcher` (at transport `addr`) fetched `key` with
    /// filter width `top_n` at `now_us`. Re-fetches refresh the existing
    /// entry (latest addr and filter width win).
    pub fn record(&mut self, key: Id160, fetcher: Id160, addr: u32, top_n: u32, now_us: u64) {
        let entry = self.keys.entry(key).or_default();
        entry.touched_us = entry.touched_us.max(now_us);
        match entry.fetchers.iter_mut().find(|f| f.id == fetcher) {
            Some(f) => {
                f.at_us = f.at_us.max(now_us);
                f.addr = addr;
                f.top_n = top_n;
            }
            None => {
                if entry.fetchers.len() >= self.max_per_key {
                    // Evict the stalest interest; deterministic ties by id.
                    let stalest = entry
                        .fetchers
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.at_us.cmp(&b.at_us).then(a.id.cmp(&b.id)))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    entry.fetchers.remove(stalest);
                }
                entry.fetchers.push(Fetcher {
                    id: fetcher,
                    addr,
                    top_n,
                    at_us: now_us,
                });
            }
        }
        if self.keys.len() > self.max_keys {
            // Evict the least-recently-touched key (deterministic ties by key).
            // dharma-lint: allow(D3): `min_by` with a (touched, key) total order is order-independent
            if let Some(victim) = self
                .keys
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by(|(ka, a), (kb, b)| a.touched_us.cmp(&b.touched_us).then(ka.cmp(kb)))
                .map(|(k, _)| *k)
            {
                self.keys.remove(&victim);
            }
        }
    }

    /// The fetchers of `key` seen within the recency window, newest first
    /// (deterministic ties by id), as
    /// `(fetcher id, transport addr, filter width)`.
    pub fn recent(&self, key: &Id160, now_us: u64) -> Vec<(Id160, u32, u32)> {
        let Some(entry) = self.keys.get(key) else {
            return Vec::new();
        };
        let mut live: Vec<&Fetcher> = entry
            .fetchers
            .iter()
            .filter(|f| now_us.saturating_sub(f.at_us) <= self.window_us)
            .collect();
        live.sort_unstable_by(|a, b| b.at_us.cmp(&a.at_us).then(a.id.cmp(&b.id)));
        live.into_iter().map(|f| (f.id, f.addr, f.top_n)).collect()
    }

    /// Drops a fetcher everywhere (it departed or was evicted from routing).
    pub fn forget_peer(&mut self, peer: &Id160) {
        // dharma-lint: allow(D3): each entry is mutated independently; no order escapes
        for entry in self.keys.values_mut() {
            entry.fetchers.retain(|f| f.id != *peer);
        }
    }

    /// Drops the record for `key` (e.g. when the key left this node).
    pub fn forget_key(&mut self, key: &Id160) {
        self.keys.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_types::sha1;

    #[test]
    fn records_and_ranks_by_recency() {
        let mut b = FetcherBook::new(8, 4, 1_000_000);
        let k = sha1(b"k");
        let (p1, p2, p3) = (sha1(b"p1"), sha1(b"p2"), sha1(b"p3"));
        b.record(k, p1, 1, 10, 100);
        b.record(k, p2, 2, 10, 200);
        b.record(k, p3, 3, 10, 300);
        assert_eq!(
            b.recent(&k, 300),
            vec![(p3, 3, 10), (p2, 2, 10), (p1, 1, 10)]
        );
        // A re-fetch moves the fetcher to the front and updates its addr
        // and filter width.
        b.record(k, p1, 9, 5, 400);
        assert_eq!(b.recent(&k, 400).first(), Some(&(p1, 9, 5)));
        // Unknown key: nobody to push to.
        assert!(b.recent(&sha1(b"other"), 400).is_empty());
    }

    #[test]
    fn window_expires_old_interest() {
        let mut b = FetcherBook::new(8, 4, 1_000);
        let k = sha1(b"k");
        b.record(k, sha1(b"p"), 1, 0, 0);
        assert_eq!(b.recent(&k, 1_000).len(), 1, "inside the window");
        assert!(b.recent(&k, 1_001).is_empty(), "outside the window");
    }

    #[test]
    fn bounds_keys_and_fetchers_per_key() {
        let mut b = FetcherBook::new(4, 2, u64::MAX / 2);
        let k = sha1(b"k");
        for i in 0..10u32 {
            b.record(k, sha1(&i.to_le_bytes()), i, 0, u64::from(i));
        }
        assert!(b.recent(&k, 10).len() <= 2, "per-key bound holds");
        // Newest interest survives the per-key eviction.
        assert_eq!(b.recent(&k, 10).first().map(|(_, a, _)| *a), Some(9));
        for i in 0..50u32 {
            b.record(sha1(&i.to_le_bytes()), sha1(b"p"), 0, 0, 100 + u64::from(i));
        }
        assert!(b.tracked() <= 4, "tracked {}", b.tracked());
    }

    #[test]
    fn forget_removes_peers_and_keys() {
        let mut b = FetcherBook::new(8, 4, u64::MAX / 2);
        let (ka, kb) = (sha1(b"a"), sha1(b"b"));
        let p = sha1(b"gone");
        b.record(ka, p, 7, 0, 0);
        b.record(kb, p, 7, 0, 0);
        b.forget_peer(&p);
        assert!(b.recent(&ka, 0).is_empty());
        assert!(b.recent(&kb, 0).is_empty());
        b.record(ka, p, 7, 0, 0);
        b.forget_key(&ka);
        assert_eq!(b.tracked(), 1, "only the untouched key remains");
    }
}
