//! A TinyLFU-style frequency sketch: a count-min sketch of packed 4-bit
//! counters with periodic halving.
//!
//! The sketch answers one question cheaply: *has this key been requested
//! more often than that one, lately?* Four rows of 4-bit counters are
//! updated per touch; the estimate is the minimum over rows (count-min).
//! Once the number of recorded touches reaches the reset threshold every
//! counter is halved, which turns raw counts into an exponentially aged
//! frequency — the "W-TinyLFU" aging rule. 4-bit saturation is deliberate:
//! admission only needs *relative* frequency, and 15 touches within one
//! aging window is already "hot".

/// Packed 4-bit count-min sketch with halving decay.
#[derive(Clone, Debug)]
pub struct FreqSketch {
    /// `ROWS` rows of `width` 4-bit counters, 16 per `u64` word.
    table: Vec<u64>,
    /// Counters per row; power of two.
    width: usize,
    /// Touches recorded since the last halving.
    samples: u64,
    /// Halve all counters when `samples` reaches this.
    reset_at: u64,
}

const ROWS: usize = 4;
/// Per-row mixing seeds (odd 64-bit constants, splitmix64 increments).
const SEEDS: [u64; ROWS] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
];

/// Finalizer from splitmix64: avalanches a row-seeded hash.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FreqSketch {
    /// Builds a sketch sized for a cache of `capacity` entries: 8 counters
    /// per cached entry per row (rounded to a power of two), which keeps
    /// collision noise under one count for Zipf-shaped request streams.
    pub fn with_capacity(capacity: usize) -> Self {
        let width = (capacity.max(8) * 8).next_power_of_two();
        FreqSketch {
            table: vec![0u64; ROWS * width / 16],
            width,
            samples: 0,
            // 16× capacity touches per aging window (Caffeine's default is
            // 10×; a slightly longer window favors stable hot sets).
            reset_at: (capacity.max(8) as u64) * 16,
        }
    }

    /// Counters per row (diagnostics).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Touches recorded since the last halving (diagnostics).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    #[inline]
    fn slot(&self, hash: u64, row: usize) -> (usize, u32) {
        let h = mix(hash ^ SEEDS[row]);
        let col = (h as usize) & (self.width - 1);
        let word = row * (self.width / 16) + col / 16;
        let shift = ((col % 16) * 4) as u32;
        (word, shift)
    }

    /// Records one touch of `hash`, aging the sketch when the window fills.
    pub fn touch(&mut self, hash: u64) {
        for row in 0..ROWS {
            let (word, shift) = self.slot(hash, row);
            let nibble = (self.table[word] >> shift) & 0xf;
            if nibble < 15 {
                self.table[word] += 1u64 << shift;
            }
        }
        self.samples += 1;
        if self.samples >= self.reset_at {
            self.halve();
        }
    }

    /// The estimated (aged) touch count of `hash`.
    pub fn estimate(&self, hash: u64) -> u8 {
        let mut min = 15u8;
        for row in 0..ROWS {
            let (word, shift) = self.slot(hash, row);
            min = min.min(((self.table[word] >> shift) & 0xf) as u8);
        }
        min
    }

    /// Halves every counter (the aging step).
    fn halve(&mut self) {
        const NIBBLE_LOW: u64 = 0x7777_7777_7777_7777;
        for w in &mut self.table {
            *w = (*w >> 1) & NIBBLE_LOW;
        }
        self.samples /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_touches() {
        let mut s = FreqSketch::with_capacity(64);
        assert_eq!(s.estimate(42), 0);
        for _ in 0..5 {
            s.touch(42);
        }
        assert_eq!(s.estimate(42), 5);
        assert_eq!(s.estimate(43), 0, "independent keys stay independent");
    }

    #[test]
    fn counters_saturate_at_15() {
        let mut s = FreqSketch::with_capacity(64);
        for _ in 0..100 {
            s.touch(7);
        }
        assert_eq!(s.estimate(7), 15);
    }

    #[test]
    fn halving_ages_the_sketch() {
        let mut s = FreqSketch::with_capacity(8);
        for _ in 0..12 {
            s.touch(1);
        }
        let before = s.estimate(1);
        // Fill the window with other touches until a halving fires
        // (observable as the sample counter dropping).
        let mut k = 100u64;
        loop {
            let prev = s.samples();
            s.touch(k);
            k += 1;
            if s.samples() < prev {
                break;
            }
        }
        assert!(
            s.estimate(1) <= before / 2 + 1,
            "aging must halve old counts: {} -> {}",
            before,
            s.estimate(1)
        );
    }

    #[test]
    fn hot_keys_outrank_cold_keys() {
        let mut s = FreqSketch::with_capacity(128);
        for i in 0..128u64 {
            s.touch(i); // every key once
        }
        for _ in 0..10 {
            s.touch(5); // one hot key
        }
        assert!(s.estimate(5) > s.estimate(77));
    }
}
