//! The per-node hot-block cache: TinyLFU admission over a segmented LRU.
//!
//! Layout follows the W-TinyLFU design (Einziger et al.): new entries land
//! in a *probation* segment; a hit promotes them to the *protected* segment
//! (bounded to 4/5 of capacity, demoting its LRU back to probation). When
//! the cache is full, the candidate is admitted only if the frequency
//! sketch says it has been requested more often than the probation LRU
//! victim — one-hit wonders never displace proven hot blocks, which is
//! exactly the right bias for a Zipf-shaped folksonomy workload.
//!
//! Entries are keyed by `(block key, top_n)` because DHARMA's index-side
//! filtering makes differently-filtered reads of the same block distinct
//! payloads. Two staleness guards apply:
//!
//! * a TTL (`ttl_us`) bounds how long any cached view can be served;
//! * a **version** tag (the write's origin stamp, [`VersionStamp`] — exact
//!   across holders) plus [`HotCache::invalidate_key`] remove every view of
//!   a key the moment the caching node itself observes a write to it —
//!   read-your-writes for the writer, monotone (never contradictory) views
//!   for everyone else.
//!
//! The structure is a slab (`Vec`) with intrusive doubly-linked lists; no
//! per-operation allocation once warm.

use dharma_types::{FxHashMap, Id160, VersionStamp};

use crate::sketch::FreqSketch;

/// Cache key: block key plus the index-side filtering limit it was read at.
pub type CacheKey = (Id160, u32);

/// Hot-cache parameters.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum number of cached views (across all keys). 0 disables.
    pub capacity: usize,
    /// Time-to-live of one cached view, µs. Bounds remote staleness.
    pub ttl_us: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 512,
            // 30 s — an eternity for a DES experiment, short for humans.
            ttl_us: 30_000_000,
        }
    }
}

/// Operation counters (monotone, per cache instance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served lookups.
    pub hits: u64,
    /// Lookups that found nothing valid.
    pub misses: u64,
    /// Values accepted (fresh inserts and replacements).
    pub insertions: u64,
    /// Candidates turned away by TinyLFU admission.
    pub rejected: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
    /// Entries dropped by [`HotCache::invalidate_key`].
    pub invalidations: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Seg {
    Probation,
    Protected,
}

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: CacheKey,
    value: V,
    version: VersionStamp,
    cached_at_us: u64,
    /// When this view (at this version) first entered the cache. Unlike
    /// `cached_at_us`, digest confirmations never move it — it anchors the
    /// hard ceiling on how long gossip may keep a view alive past its TTL.
    inserted_at_us: u64,
    prev: u32,
    next: u32,
    seg: Seg,
}

#[derive(Clone, Copy, Debug, Default)]
struct List {
    head: u32,
    tail: u32,
    len: usize,
}

/// The bounded hot-block cache.
#[derive(Debug)]
pub struct HotCache<V> {
    cfg: CacheConfig,
    sketch: FreqSketch,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<u32>,
    map: FxHashMap<CacheKey, u32>,
    /// Secondary index: every cached view of a block key, for invalidation.
    by_id: FxHashMap<Id160, Vec<u32>>,
    probation: List,
    protected: List,
    stats: CacheStats,
}

#[inline]
fn hash_key(key: &CacheKey) -> u64 {
    use std::hash::{BuildHasher, BuildHasherDefault};
    let bh: BuildHasherDefault<dharma_types::fx::FxHasher> = Default::default();
    bh.hash_one(key)
}

impl<V: Clone> HotCache<V> {
    /// Creates a cache with the given bounds.
    pub fn new(cfg: CacheConfig) -> Self {
        let cap = cfg.capacity;
        HotCache {
            sketch: FreqSketch::with_capacity(cap.max(1)),
            cfg,
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            map: FxHashMap::default(),
            by_id: FxHashMap::default(),
            probation: List {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            protected: List {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            stats: CacheStats::default(),
        }
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Operation counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Protected-segment bound: 4/5 of capacity (at least 1 when cap > 1).
    fn protected_cap(&self) -> usize {
        (self.cfg.capacity * 4 / 5).max(usize::from(self.cfg.capacity > 1))
    }

    /// Looks up a cached view. Touches the frequency sketch (misses count
    /// toward future admission — that is what lets a hot key eventually
    /// displace a colder resident), expires stale entries, and promotes
    /// hits into the protected segment. Returns the view and its stamp.
    pub fn get(&mut self, key: &CacheKey, now_us: u64) -> Option<(V, VersionStamp)> {
        self.sketch.touch(hash_key(key));
        let Some(&idx) = self.map.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        let (cached_at, version) = {
            let slot = self.slots[idx as usize].as_ref().expect("mapped slot");
            (slot.cached_at_us, slot.version)
        };
        if now_us.saturating_sub(cached_at) > self.cfg.ttl_us {
            self.remove_slot(idx);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.promote(idx);
        self.stats.hits += 1;
        let slot = self.slots[idx as usize].as_ref().expect("mapped slot");
        Some((slot.value.clone(), version))
    }

    /// Looks up without promoting or counting (tests/diagnostics).
    pub fn peek(&self, key: &CacheKey) -> Option<&V> {
        let &idx = self.map.get(key)?;
        self.slots[idx as usize].as_ref().map(|s| &s.value)
    }

    /// The origin stamp of a cached view, if present (tests/diagnostics).
    pub fn peek_version(&self, key: &CacheKey) -> Option<VersionStamp> {
        let &idx = self.map.get(key)?;
        self.slots[idx as usize].as_ref().map(|s| s.version)
    }

    /// How long ago a cached view was last minted or confirmed fresh
    /// (drives the refresh-ahead probe of the `dharma-fresh` subsystem).
    pub fn age_of(&self, key: &CacheKey, now_us: u64) -> Option<u64> {
        let &idx = self.map.get(key)?;
        self.slots[idx as usize]
            .as_ref()
            .map(|s| now_us.saturating_sub(s.cached_at_us))
    }

    /// Offers a view for caching. Replaces an existing view of the same key
    /// unless the resident is strictly *newer* (higher origin stamp) — an
    /// equal-or-newer candidate wins and restamps the TTL clock, which is
    /// sound because callers only mint cache entries from freshly-read
    /// authoritative views. Origin stamps compare exactly across holders,
    /// so "newer" here is the true write order, not a per-holder guess.
    /// When full, TinyLFU admission compares the candidate's sketch
    /// frequency against the probation-LRU victim's and keeps the
    /// likelier-to-be-read one. Returns true when the value is resident
    /// afterwards.
    pub fn insert(&mut self, key: CacheKey, version: VersionStamp, value: V, now_us: u64) -> bool {
        if self.cfg.capacity == 0 {
            return false;
        }
        let hash = hash_key(&key);
        self.sketch.touch(hash);

        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slots[idx as usize].as_mut().expect("mapped slot");
            if version >= slot.version {
                slot.value = value;
                // The lifetime anchor moves only when the *stamp*
                // advances: an equal-stamp re-insert refreshes the TTL
                // clock but not the confirmation ceiling, so repeated
                // confirmations of the same write can never re-arm the
                // hard lifetime cap.
                if version > slot.version {
                    slot.inserted_at_us = now_us;
                }
                slot.version = version;
                slot.cached_at_us = now_us;
                self.stats.insertions += 1;
            }
            self.promote(idx);
            return true;
        }

        if self.map.len() >= self.cfg.capacity {
            // Victim: probation LRU when the segment is non-empty, else the
            // protected LRU (degenerate small-capacity case).
            let victim = if self.probation.len > 0 {
                self.probation.tail
            } else {
                self.protected.tail
            };
            let victim_key = self.slots[victim as usize].as_ref().expect("victim").key;
            if self.sketch.estimate(hash) <= self.sketch.estimate(hash_key(&victim_key)) {
                self.stats.rejected += 1;
                return false;
            }
            self.remove_slot(victim);
            self.stats.evictions += 1;
        }

        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[idx as usize] = Some(Slot {
            key,
            value,
            version,
            cached_at_us: now_us,
            inserted_at_us: now_us,
            prev: NIL,
            next: NIL,
            seg: Seg::Probation,
        });
        self.push_front(Seg::Probation, idx);
        self.map.insert(key, idx);
        self.by_id.entry(key.0).or_default().push(idx);
        self.stats.insertions += 1;
        true
    }

    /// Drops every cached view of block `id` (all `top_n` variants).
    /// Called by the owning node whenever it applies a write to `id`, which
    /// is what makes cached reads consistent with token-append semantics:
    /// a writer can never observe its own cache serving the pre-write view.
    /// Returns how many views were dropped.
    pub fn invalidate_key(&mut self, id: &Id160) -> usize {
        let Some(indices) = self.by_id.remove(id) else {
            return 0;
        };
        let mut dropped = 0;
        for idx in indices {
            // The slot may have been reused since; verify it still maps.
            if let Some(slot) = self.slots[idx as usize].as_ref() {
                if slot.key.0 == *id && self.map.get(&slot.key) == Some(&idx) {
                    self.remove_slot(idx);
                    dropped += 1;
                }
            }
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Version-gossip revalidation, the *drop* half: removes every cached
    /// view of block `id` whose stamp is strictly below `below` (a digest
    /// claimed a newer write exists, so these views must not be served
    /// again). Returns the `top_n` variants dropped, so the caller can
    /// refresh the ones worth refreshing.
    pub fn invalidate_stale(&mut self, id: &Id160, below: VersionStamp) -> Vec<u32> {
        let Some(indices) = self.by_id.get(id).cloned() else {
            return Vec::new();
        };
        let mut dropped = Vec::new();
        for idx in indices {
            if let Some(slot) = self.slots[idx as usize].as_ref() {
                if slot.key.0 == *id
                    && self.map.get(&slot.key) == Some(&idx)
                    && slot.version < below
                {
                    dropped.push(slot.key.1);
                    self.remove_slot(idx);
                }
            }
        }
        self.stats.invalidations += dropped.len() as u64;
        dropped
    }

    /// Version-gossip revalidation, the *keep* half: a digest confirmed
    /// `id` is still at `version`, so restamp the TTL clock of every
    /// cached view holding exactly that stamp — still-valid entries
    /// outlive their TTL without widening the staleness window. The
    /// extension is capped: a view whose *first insertion* is more than
    /// `max_lifetime_us` ago is not restamped (defence in depth — even a
    /// buggy or hostile stamp must not pin a view forever). Returns how
    /// many views were restamped.
    pub fn confirm_fresh(
        &mut self,
        id: &Id160,
        version: VersionStamp,
        now_us: u64,
        max_lifetime_us: u64,
    ) -> usize {
        let Some(indices) = self.by_id.get(id) else {
            return 0;
        };
        let mut confirmed = 0;
        for &idx in indices {
            if let Some(slot) = self.slots[idx as usize].as_mut() {
                if slot.key.0 == *id
                    && slot.version == version
                    && now_us.saturating_sub(slot.inserted_at_us) <= max_lifetime_us
                {
                    slot.cached_at_us = slot.cached_at_us.max(now_us);
                    confirmed += 1;
                }
            }
        }
        confirmed
    }

    /// Drops one cached view.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.get(key) {
            Some(&idx) => {
                self.remove_slot(idx);
                true
            }
            None => false,
        }
    }

    // ----- intrusive-list plumbing ------------------------------------

    fn list(&mut self, seg: Seg) -> &mut List {
        match seg {
            Seg::Probation => &mut self.probation,
            Seg::Protected => &mut self.protected,
        }
    }

    fn push_front(&mut self, seg: Seg, idx: u32) {
        let old_head = self.list(seg).head;
        {
            let slot = self.slots[idx as usize].as_mut().expect("slot");
            slot.seg = seg;
            slot.prev = NIL;
            slot.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].as_mut().expect("head").prev = idx;
        }
        let list = self.list(seg);
        list.head = idx;
        if list.tail == NIL {
            list.tail = idx;
        }
        list.len += 1;
    }

    fn detach(&mut self, idx: u32) {
        let (seg, prev, next) = {
            let slot = self.slots[idx as usize].as_ref().expect("slot");
            (slot.seg, slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev as usize].as_mut().expect("prev").next = next;
        }
        if next != NIL {
            self.slots[next as usize].as_mut().expect("next").prev = prev;
        }
        let list = self.list(seg);
        if list.head == idx {
            list.head = next;
        }
        if list.tail == idx {
            list.tail = prev;
        }
        list.len -= 1;
    }

    fn remove_slot(&mut self, idx: u32) {
        self.detach(idx);
        let slot = self.slots[idx as usize].take().expect("slot");
        self.map.remove(&slot.key);
        if let Some(list) = self.by_id.get_mut(&slot.key.0) {
            list.retain(|&i| i != idx);
            if list.is_empty() {
                self.by_id.remove(&slot.key.0);
            }
        }
        self.free.push(idx);
    }

    /// Hit handling: probation → protected (demoting the protected LRU when
    /// over bound), protected → its own MRU position.
    fn promote(&mut self, idx: u32) {
        let seg = self.slots[idx as usize].as_ref().expect("slot").seg;
        self.detach(idx);
        match seg {
            Seg::Probation => {
                if self.protected.len >= self.protected_cap() {
                    let demote = self.protected.tail;
                    if demote != NIL {
                        self.detach(demote);
                        self.push_front(Seg::Probation, demote);
                    }
                }
                self.push_front(Seg::Protected, idx);
            }
            Seg::Protected => self.push_front(Seg::Protected, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_types::sha1;

    fn key(n: u8, top: u32) -> CacheKey {
        (sha1(&[n]), top)
    }

    fn v(seq: u64) -> VersionStamp {
        VersionStamp::new(seq, sha1(b"writer"))
    }

    fn cache(capacity: usize, ttl_us: u64) -> HotCache<String> {
        HotCache::new(CacheConfig { capacity, ttl_us })
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = cache(4, 1_000);
        assert!(c.insert(key(1, 0), v(1), "v".into(), 0));
        assert_eq!(c.get(&key(1, 0), 10), Some(("v".into(), v(1))));
        assert_eq!(c.get(&key(1, 5), 10), None, "top_n is part of the key");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_expires_views() {
        let mut c = cache(4, 1_000);
        c.insert(key(1, 0), v(1), "v".into(), 0);
        assert!(c.get(&key(1, 0), 1_000).is_some(), "at the TTL edge");
        assert!(c.get(&key(1, 0), 1_001).is_none(), "past the TTL");
        assert_eq!(c.stats().expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_never_exceeded_and_hot_wins() {
        let mut c = cache(2, u64::MAX);
        c.insert(key(1, 0), v(1), "a".into(), 0);
        c.insert(key(2, 0), v(1), "b".into(), 0);
        // key 3 is cold: one touch. The probation victim has equal
        // frequency, so admission rejects the newcomer.
        assert!(!c.insert(key(3, 0), v(1), "c".into(), 0));
        assert_eq!(c.len(), 2);
        // Heat key 3 up: repeated misses accumulate sketch frequency.
        for _ in 0..4 {
            let _ = c.get(&key(3, 0), 0);
        }
        assert!(
            c.insert(key(3, 0), v(1), "c".into(), 0),
            "hot candidate admitted"
        );
        assert_eq!(c.len(), 2, "capacity still respected");
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn hits_protect_entries_from_eviction() {
        let mut c = cache(3, u64::MAX);
        c.insert(key(1, 0), v(1), "a".into(), 0);
        c.insert(key(2, 0), v(1), "b".into(), 0);
        c.insert(key(3, 0), v(1), "c".into(), 0);
        // Hit 1 twice: it moves to protected.
        let _ = c.get(&key(1, 0), 0);
        let _ = c.get(&key(1, 0), 0);
        // A hot newcomer displaces from probation, never from protected.
        for _ in 0..6 {
            let _ = c.get(&key(4, 0), 0);
        }
        assert!(c.insert(key(4, 0), v(1), "d".into(), 0));
        assert!(c.peek(&key(1, 0)).is_some(), "protected entry survives");
    }

    #[test]
    fn invalidate_key_drops_all_topn_variants() {
        let mut c = cache(8, u64::MAX);
        c.insert(key(1, 0), v(1), "full".into(), 0);
        c.insert(key(1, 10), v(1), "top10".into(), 0);
        c.insert(key(2, 0), v(1), "other".into(), 0);
        assert_eq!(c.invalidate_key(&sha1(&[1])), 2);
        assert!(c.peek(&key(1, 0)).is_none());
        assert!(c.peek(&key(1, 10)).is_none());
        assert!(c.peek(&key(2, 0)).is_some());
        assert_eq!(c.invalidate_key(&sha1(&[9])), 0);
    }

    #[test]
    fn replacement_keeps_newest_version() {
        let mut c = cache(4, u64::MAX);
        c.insert(key(1, 0), v(5), "v5".into(), 0);
        // An older snapshot must not clobber a newer cached view.
        c.insert(key(1, 0), v(3), "v3".into(), 1);
        assert_eq!(c.peek(&key(1, 0)).map(String::as_str), Some("v5"));
        assert_eq!(c.peek_version(&key(1, 0)), Some(v(5)));
        c.insert(key(1, 0), v(8), "v8".into(), 2);
        assert_eq!(c.peek(&key(1, 0)).map(String::as_str), Some("v8"));
    }

    #[test]
    fn zero_capacity_disables_cleanly() {
        let mut c = cache(0, 1_000);
        assert!(!c.insert(key(1, 0), v(1), "v".into(), 0));
        assert!(c.get(&key(1, 0), 0).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidate_stale_drops_only_older_versions() {
        let mut c = cache(8, u64::MAX);
        c.insert(key(1, 0), v(3), "v3-full".into(), 0);
        c.insert(key(1, 10), v(5), "v5-top10".into(), 0);
        c.insert(key(2, 0), v(1), "other".into(), 0);
        let mut dropped = c.invalidate_stale(&sha1(&[1]), v(5));
        dropped.sort_unstable();
        assert_eq!(dropped, vec![0], "only the version-3 view is stale");
        assert!(c.peek(&key(1, 0)).is_none());
        assert!(c.peek(&key(1, 10)).is_some(), "equal version survives");
        assert!(c.peek(&key(2, 0)).is_some(), "other keys untouched");
        assert!(c.invalidate_stale(&sha1(&[9]), v(99)).is_empty());
    }

    #[test]
    fn confirm_fresh_extends_ttl_up_to_the_lifetime_cap() {
        let mut c = cache(4, 1_000);
        c.insert(key(1, 0), v(7), "v".into(), 0);
        // Confirmation at t=900 restamps the TTL clock: the view survives
        // past its original expiry at t=1000.
        assert_eq!(c.confirm_fresh(&sha1(&[1]), v(7), 900, 10_000), 1);
        assert!(c.get(&key(1, 0), 1_800).is_some(), "outlives the TTL");
        // A mismatched version confirms nothing.
        assert_eq!(c.confirm_fresh(&sha1(&[1]), v(8), 1_900, 10_000), 0);
        // Past the insertion-age cap, confirmations stop extending.
        assert_eq!(c.confirm_fresh(&sha1(&[1]), v(7), 11_000, 10_000), 0);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut c = cache(2, u64::MAX);
        for round in 0..20u8 {
            c.insert(key(round, 0), v(1), format!("v{round}"), u64::from(round));
            c.remove(&key(round, 0));
        }
        assert!(c.slots.len() <= 2, "slab must recycle: {}", c.slots.len());
    }
}
