//! Version-gossip freshness tracking and per-peer hit history — the
//! requester-side state of the `dharma-fresh` subsystem.
//!
//! PR 2's hot-block cache bounds staleness by TTL alone: a cached view is
//! served until its clock runs out, whether or not the block was rewritten
//! five seconds after it was cached. The DHT survey's standard next step is
//! **version gossip**: nodes piggyback a compact per-key write-version
//! digest on replies they were sending anyway (`FoundNodes`, `FoundValue`,
//! `Pong`), so a node holding a cached view *opportunistically* learns of
//! newer versions. Two structures implement the requester side:
//!
//! * [`FreshnessBook`] — the highest write-version this node has seen any
//!   digest claim for each key. Its [`FreshnessBook::admits`] gate is the
//!   **monotone-freshness rule**: a cached view may be served only if its
//!   version is at least the highest digest version seen, so gossip can
//!   only ever tighten (never widen) the staleness window the TTL allows.
//! * [`HitHistory`] — a decayed per-key record of which peers recently
//!   served the key (from cache or authoritatively). The lookup layer uses
//!   it to seed shortlists with known recent servers and to prefer warm
//!   peers over equally-useful cold ones, cutting hops on repeat keys.
//!
//! Both are deterministic, allocation-light, and bounded; time is
//! caller-provided microseconds, as everywhere in this workspace.
//!
//! Versions are **origin stamps** ([`VersionStamp`]): minted once at the
//! write's coordinator and totally ordered by `(seq, writer)`, so digests
//! from *any* holder compare exactly against a cached view's stamp — there
//! is no per-holder counter ambiguity left. TTL-extension on confirmation
//! is still capped by the hot cache's insertion-age bound, so even a
//! buggy or hostile stamp can never pin a stale view forever.

use dharma_types::{FxHashMap, Id160, VersionStamp};

/// Configuration of the `dharma-fresh` subsystem (version gossip +
/// cache-aware lookup routing). Carried by the overlay node's config;
/// `None` there disables both features and keeps the node's behavior
/// byte-identical to the TTL-only protocol (digests are sent empty).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`FreshConfig::default()`] (then mutate fields) or through the
/// range-validated [`FreshConfig::builder()`], so new knobs can land
/// without breaking every literal in downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FreshConfig {
    /// Maximum entries in one piggybacked digest (keeps replies well under
    /// the MTU: one entry is 20 id bytes + a varint).
    pub digest_max: usize,
    /// How long a local write stays in the digest's "news" section, µs.
    pub news_window_us: u64,
    /// Half-life of the per-peer hit history, µs.
    pub hit_half_life_us: u64,
    /// Minimum decayed hit weight for a peer to count as *warm* for a key.
    pub warm_threshold: f64,
    /// Bound on keys tracked by the hit history (LRU beyond it).
    pub max_tracked_keys: usize,
    /// Bound on peers remembered per key (lightest dropped first).
    pub max_peers_per_key: usize,
    /// Bound on keys tracked by the freshness book.
    pub max_versions: usize,
    /// Cap on how long a cached view may outlive its first insertion
    /// through digest confirmations, µs — the hard staleness ceiling that
    /// makes TTL extension safe against incomparable version counters.
    pub max_view_lifetime_us: u64,
    /// Revalidate (direct `FindValue` to the digest sender) when a stale
    /// digest drops a cached view, instead of plain dropping.
    pub revalidate_on_stale: bool,
    /// Refresh-ahead: serving a cache hit whose last authoritative mint
    /// or confirmation is older than this triggers a background
    /// revalidation probe (one direct `FindValue` to a likely holder), so
    /// a hot view's content tracks writes instead of aging toward the
    /// TTL. 0 disables. Should be well below the cache TTL — half is a
    /// good default ratio.
    pub refresh_age_us: u64,
    /// The serve-age bar: a cached view whose last mint/confirmation is
    /// older than this is treated as a **miss** even inside its TTL — the
    /// read goes through (refreshing the view), and the staleness window
    /// of anything actually served is bounded by this bar instead of the
    /// TTL. Confirmations and refreshes reset the age, so gossip — not
    /// the clock — is what keeps hot views servable. 0 disables (TTL-only
    /// serve bound). Must exceed [`FreshConfig::refresh_age_us`] or every
    /// view ages out before its refresh fires.
    pub max_serve_age_us: u64,
    /// Bias lookup candidate ordering toward warm peers and seed GET
    /// shortlists from the hit history (cache-aware routing). Off leaves
    /// routing purely XOR-driven while gossip still manages freshness.
    pub cache_aware_routing: bool,
    /// Write-triggered invalidation push: when a holder applies a write,
    /// it sends a bounded fan-out of `InvalidatePush` RPCs to the key's
    /// recent fetchers, invalidating (or triggering a one-RTT refresh of)
    /// their cached views immediately instead of waiting for gossip to
    /// reach them. Off keeps the gossip-only protocol byte-identical.
    pub push_on_write: bool,
    /// Maximum `InvalidatePush` RPCs one holder sends per applied write.
    pub push_fanout: usize,
    /// Only fetchers seen within this window are pushed to, µs — older
    /// interest has likely TTL-expired anyway.
    pub push_window_us: u64,
}

impl Default for FreshConfig {
    fn default() -> Self {
        FreshConfig {
            digest_max: 8,
            news_window_us: 30_000_000,   // 30 s
            hit_half_life_us: 60_000_000, // 60 s
            warm_threshold: 0.5,
            max_tracked_keys: 1024,
            max_peers_per_key: 4,
            max_versions: 4096,
            max_view_lifetime_us: 240_000_000, // 4 min ≈ 8 default TTLs
            revalidate_on_stale: true,
            refresh_age_us: 15_000_000,   // half the default cache TTL
            max_serve_age_us: 24_000_000, // 80% of the default cache TTL
            cache_aware_routing: true,
            push_on_write: false,
            push_fanout: 4,
            push_window_us: 30_000_000, // one default cache TTL
        }
    }
}

impl FreshConfig {
    /// A range-validated builder starting from [`FreshConfig::default()`].
    pub fn builder() -> FreshConfigBuilder {
        FreshConfigBuilder {
            cfg: FreshConfig::default(),
        }
    }
}

/// Builder for [`FreshConfig`] with validated ranges ([`FreshConfig::builder()`]).
#[derive(Clone, Debug)]
pub struct FreshConfigBuilder {
    cfg: FreshConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, v: $ty) -> Self {
            self.cfg.$name = v;
            self
        }
    };
}

impl FreshConfigBuilder {
    setter!(
        /// See [`FreshConfig::digest_max`].
        digest_max: usize
    );
    setter!(
        /// See [`FreshConfig::news_window_us`].
        news_window_us: u64
    );
    setter!(
        /// See [`FreshConfig::hit_half_life_us`].
        hit_half_life_us: u64
    );
    setter!(
        /// See [`FreshConfig::warm_threshold`].
        warm_threshold: f64
    );
    setter!(
        /// See [`FreshConfig::max_tracked_keys`].
        max_tracked_keys: usize
    );
    setter!(
        /// See [`FreshConfig::max_peers_per_key`].
        max_peers_per_key: usize
    );
    setter!(
        /// See [`FreshConfig::max_versions`].
        max_versions: usize
    );
    setter!(
        /// See [`FreshConfig::max_view_lifetime_us`].
        max_view_lifetime_us: u64
    );
    setter!(
        /// See [`FreshConfig::revalidate_on_stale`].
        revalidate_on_stale: bool
    );
    setter!(
        /// See [`FreshConfig::refresh_age_us`].
        refresh_age_us: u64
    );
    setter!(
        /// See [`FreshConfig::max_serve_age_us`].
        max_serve_age_us: u64
    );
    setter!(
        /// See [`FreshConfig::cache_aware_routing`].
        cache_aware_routing: bool
    );
    setter!(
        /// See [`FreshConfig::push_on_write`].
        push_on_write: bool
    );
    setter!(
        /// See [`FreshConfig::push_fanout`].
        push_fanout: usize
    );
    setter!(
        /// See [`FreshConfig::push_window_us`].
        push_window_us: u64
    );

    /// Validates ranges and produces the config. Errors name the bad knob.
    pub fn build(self) -> Result<FreshConfig, String> {
        let c = &self.cfg;
        if c.digest_max == 0 || c.digest_max > 64 {
            return Err(format!("digest_max {} out of range 1..=64", c.digest_max));
        }
        if c.hit_half_life_us == 0 {
            return Err("hit_half_life_us must be positive".into());
        }
        if !(c.warm_threshold > 0.0 && c.warm_threshold.is_finite()) {
            return Err(format!(
                "warm_threshold {} must be positive and finite",
                c.warm_threshold
            ));
        }
        if c.max_serve_age_us != 0 && c.max_serve_age_us <= c.refresh_age_us {
            return Err(format!(
                "max_serve_age_us {} must exceed refresh_age_us {} (or be 0): views would age out before their refresh fires",
                c.max_serve_age_us, c.refresh_age_us
            ));
        }
        if c.push_on_write && c.push_fanout == 0 {
            return Err("push_fanout must be >= 1 when push_on_write is set".into());
        }
        if c.push_on_write && c.push_window_us == 0 {
            return Err("push_window_us must be positive when push_on_write is set".into());
        }
        Ok(self.cfg)
    }
}

/// The highest origin stamp this node has seen gossiped for each key.
///
/// The book is advisory: losing an entry (capacity shed) only loses the
/// tightened bound, never correctness — staleness falls back to the TTL
/// bound every cached view already lives under.
#[derive(Clone, Debug, Default)]
pub struct FreshnessBook {
    cap: usize,
    seen: FxHashMap<Id160, VersionStamp>,
}

impl FreshnessBook {
    /// A book bounded to `cap` keys (0 = unbounded).
    pub fn new(cap: usize) -> Self {
        FreshnessBook {
            cap,
            seen: FxHashMap::default(),
        }
    }

    /// Number of keys with a recorded bound.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Records one gossiped `(key, stamp)` observation. Returns `true`
    /// when it *raised* the key's known bound (i.e. carried news).
    pub fn note(&mut self, key: Id160, version: VersionStamp) -> bool {
        let slot = self.seen.entry(key).or_insert(VersionStamp::ZERO);
        let news = version > *slot;
        if news {
            *slot = version;
        }
        if self.cap > 0 && self.seen.len() > self.cap {
            // Shed the lowest-stamped quarter (deterministic: ties by
            // key). Low stamps are the oldest news and the cheapest
            // bounds to lose.
            // dharma-lint: allow(D3): collected then sorted by (stamp, key) — a total order
            let mut entries: Vec<(Id160, VersionStamp)> =
                self.seen.iter().map(|(k, &v)| (*k, v)).collect();
            entries.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            for (k, _) in entries.into_iter().take(self.cap / 4 + 1) {
                if k != key {
                    self.seen.remove(&k);
                }
            }
        }
        news
    }

    /// The highest gossiped stamp recorded for `key`.
    pub fn highest(&self, key: &Id160) -> Option<VersionStamp> {
        self.seen.get(key).copied()
    }

    /// The monotone-freshness gate: may a cached view of `key` at
    /// `version` still be served? True iff no digest has claimed a newer
    /// stamp. Unknown keys are admitted (the TTL still bounds them).
    pub fn admits(&self, key: &Id160, version: VersionStamp) -> bool {
        self.highest(key).map(|h| version >= h).unwrap_or(true)
    }

    /// Drops the bound for `key` (e.g. when its record left this node).
    pub fn forget(&mut self, key: &Id160) {
        self.seen.remove(key);
    }
}

#[derive(Clone, Copy, Debug)]
struct PeerHit {
    id: Id160,
    addr: u32,
    weight: f64,
    at_us: u64,
    /// Whether the peer's most recent serve was from its cache (warm
    /// ranking prefers cache servers: routing repeat GETs to them keeps
    /// load *off* the authoritative holders).
    from_cache: bool,
}

#[derive(Clone, Debug, Default)]
struct KeyHits {
    peers: Vec<PeerHit>,
    touched_us: u64,
}

/// Decayed per-key history of which peers recently served the key.
///
/// Every `FoundValue` a requester receives records `(key, server)` here;
/// the decayed weight approximates "hits served in the last half-life".
/// [`HitHistory::warm_peers`] is what the lookup layer seeds shortlists
/// from and biases candidate ordering toward.
#[derive(Clone, Debug)]
pub struct HitHistory {
    half_life_us: u64,
    warm_threshold: f64,
    max_keys: usize,
    max_peers: usize,
    keys: FxHashMap<Id160, KeyHits>,
}

impl HitHistory {
    /// A history with the given decay and bounds.
    pub fn new(cfg: &FreshConfig) -> Self {
        HitHistory {
            half_life_us: cfg.hit_half_life_us.max(1),
            warm_threshold: cfg.warm_threshold,
            max_keys: cfg.max_tracked_keys.max(1),
            max_peers: cfg.max_peers_per_key.max(1),
            keys: FxHashMap::default(),
        }
    }

    /// Keys currently tracked.
    pub fn tracked(&self) -> usize {
        self.keys.len()
    }

    fn decayed(&self, weight: f64, dt_us: u64) -> f64 {
        weight * (-(dt_us as f64) / self.half_life_us as f64).exp2()
    }

    /// Records that `peer` served `key` at `now_us` (`from_cache` = the
    /// reply came from the peer's hot-block cache, not its storage).
    pub fn record(&mut self, key: Id160, peer: Id160, addr: u32, from_cache: bool, now_us: u64) {
        let half_life = self.half_life_us;
        let entry = self.keys.entry(key).or_default();
        entry.touched_us = entry.touched_us.max(now_us);
        match entry.peers.iter_mut().find(|p| p.id == peer) {
            Some(p) => {
                let dt = now_us.saturating_sub(p.at_us);
                p.weight = p.weight * (-(dt as f64) / half_life as f64).exp2() + 1.0;
                p.at_us = now_us;
                p.addr = addr;
                p.from_cache = from_cache;
            }
            None => {
                if entry.peers.len() >= self.max_peers {
                    // Evict the lightest (as of now); deterministic ties by id.
                    let lightest = entry
                        .peers
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            let wa = a.weight
                                * (-(now_us.saturating_sub(a.at_us) as f64) / half_life as f64)
                                    .exp2();
                            let wb = b.weight
                                * (-(now_us.saturating_sub(b.at_us) as f64) / half_life as f64)
                                    .exp2();
                            wa.partial_cmp(&wb).expect("finite").then(a.id.cmp(&b.id))
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    entry.peers.remove(lightest);
                }
                entry.peers.push(PeerHit {
                    id: peer,
                    addr,
                    weight: 1.0,
                    at_us: now_us,
                    from_cache,
                });
            }
        }
        if self.keys.len() > self.max_keys {
            // Evict the least-recently-touched key (deterministic ties by key).
            // dharma-lint: allow(D3): `min_by` with a (touched, key) total order is order-independent
            if let Some(victim) = self
                .keys
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by(|(ka, a), (kb, b)| a.touched_us.cmp(&b.touched_us).then(ka.cmp(kb)))
                .map(|(k, _)| *k)
            {
                self.keys.remove(&victim);
            }
        }
    }

    /// Drops a peer everywhere (it departed / was evicted from routing).
    pub fn forget_peer(&mut self, peer: &Id160) {
        // dharma-lint: allow(D3): each entry is mutated independently; no order escapes
        for entry in self.keys.values_mut() {
            entry.peers.retain(|p| p.id != *peer);
        }
    }

    /// The peers whose decayed hit weight for `key` clears the warm
    /// threshold, as `(peer id, transport addr)` pairs: cache servers
    /// first (routing toward them offloads the authoritative holders),
    /// then by decayed weight, deterministic ties by id.
    pub fn warm_peers(&self, key: &Id160, now_us: u64) -> Vec<(Id160, u32)> {
        let Some(entry) = self.keys.get(key) else {
            return Vec::new();
        };
        let mut warm: Vec<(bool, f64, Id160, u32)> = entry
            .peers
            .iter()
            .map(|p| {
                (
                    p.from_cache,
                    self.decayed(p.weight, now_us.saturating_sub(p.at_us)),
                    p.id,
                    p.addr,
                )
            })
            .filter(|(_, w, _, _)| *w >= self.warm_threshold)
            .collect();
        warm.sort_unstable_by(|a, b| {
            b.0.cmp(&a.0)
                .then(b.1.partial_cmp(&a.1).expect("finite"))
                .then(a.2.cmp(&b.2))
        });
        warm.into_iter()
            .map(|(_, _, id, addr)| (id, addr))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dharma_types::sha1;

    fn stamp(seq: u64) -> VersionStamp {
        VersionStamp::new(seq, sha1(b"writer"))
    }

    #[test]
    fn book_tracks_highest_and_admits_monotonically() {
        let mut b = FreshnessBook::new(0);
        let k = sha1(b"k");
        assert!(
            b.admits(&k, VersionStamp::ZERO),
            "unknown keys are admitted"
        );
        assert!(b.note(k, stamp(3)), "first observation is news");
        assert!(!b.note(k, stamp(2)), "lower stamps are not");
        assert!(b.note(k, stamp(7)));
        assert_eq!(b.highest(&k), Some(stamp(7)));
        assert!(!b.admits(&k, stamp(6)));
        assert!(b.admits(&k, stamp(7)));
        assert!(b.admits(&k, stamp(9)));
        b.forget(&k);
        assert!(b.admits(&k, VersionStamp::ZERO));
    }

    #[test]
    fn book_orders_equal_seq_stamps_by_writer() {
        // Two concurrent writers minting the same Lamport seq still have
        // a total order: the higher writer id wins, exactly, on any node.
        let mut b = FreshnessBook::new(0);
        let k = sha1(b"k");
        let (wa, wb) = (sha1(b"wa"), sha1(b"wb"));
        let (lo, hi) = if wa < wb { (wa, wb) } else { (wb, wa) };
        assert!(b.note(k, VersionStamp::new(5, lo)));
        assert!(b.note(k, VersionStamp::new(5, hi)), "higher writer is news");
        assert!(!b.admits(&k, VersionStamp::new(5, lo)));
        assert!(b.admits(&k, VersionStamp::new(5, hi)));
    }

    #[test]
    fn book_capacity_is_bounded_and_keeps_the_note_just_made() {
        let mut b = FreshnessBook::new(16);
        for i in 0..200u32 {
            let k = sha1(&i.to_le_bytes());
            b.note(k, stamp(u64::from(i) + 1));
            assert!(b.len() <= 17, "len {} at i {i}", b.len());
            assert!(b.highest(&k).is_some(), "just-noted key survives the shed");
        }
    }

    #[test]
    fn builder_validates_ranges_both_ways() {
        let ok = FreshConfig::builder()
            .digest_max(8)
            .refresh_age_us(1_000_000)
            .max_serve_age_us(2_000_000)
            .push_on_write(true)
            .push_fanout(4)
            .build()
            .expect("valid config");
        assert!(ok.push_on_write);
        assert_eq!(ok.push_fanout, 4);
        assert!(FreshConfig::builder().digest_max(0).build().is_err());
        assert!(FreshConfig::builder().warm_threshold(0.0).build().is_err());
        assert!(FreshConfig::builder()
            .refresh_age_us(10)
            .max_serve_age_us(10)
            .build()
            .is_err());
        assert!(FreshConfig::builder()
            .push_on_write(true)
            .push_fanout(0)
            .build()
            .is_err());
        assert!(FreshConfig::builder()
            .push_on_write(true)
            .push_window_us(0)
            .build()
            .is_err());
    }

    #[test]
    fn hit_history_decays_and_ranks_peers() {
        let cfg = FreshConfig {
            hit_half_life_us: 1_000_000,
            warm_threshold: 0.5,
            max_peers_per_key: 4,
            ..FreshConfig::default()
        };
        let mut h = HitHistory::new(&cfg);
        let k = sha1(b"k");
        let (p1, p2) = (sha1(b"p1"), sha1(b"p2"));
        h.record(k, p1, 1, false, 0);
        h.record(k, p1, 1, false, 0);
        h.record(k, p2, 2, false, 0);
        let warm = h.warm_peers(&k, 0);
        assert_eq!(warm.first(), Some(&(p1, 1)), "heavier peer ranks first");
        assert_eq!(warm.len(), 2);
        // A cache server outranks a heavier authoritative one: repeat GETs
        // routed to it keep load off the holders.
        h.record(k, p2, 2, true, 0);
        assert_eq!(h.warm_peers(&k, 0).first(), Some(&(p2, 2)));
        // Several half-lives later both faded below the threshold.
        assert!(h.warm_peers(&k, 10_000_000).is_empty());
        // Unknown key: no peers.
        assert!(h.warm_peers(&sha1(b"other"), 0).is_empty());
    }

    #[test]
    fn hit_history_bounds_keys_and_peers() {
        let cfg = FreshConfig {
            max_tracked_keys: 8,
            max_peers_per_key: 2,
            ..FreshConfig::default()
        };
        let mut h = HitHistory::new(&cfg);
        let k = sha1(b"k");
        for i in 0..10u32 {
            h.record(k, sha1(&i.to_le_bytes()), i, false, u64::from(i));
        }
        assert!(h.warm_peers(&k, 10).len() <= 2);
        for i in 0..50u32 {
            h.record(
                sha1(&i.to_le_bytes()),
                sha1(b"p"),
                0,
                false,
                100 + u64::from(i),
            );
        }
        assert!(h.tracked() <= 8, "tracked {}", h.tracked());
    }

    #[test]
    fn forget_peer_removes_it_from_every_key() {
        let cfg = FreshConfig::default();
        let mut h = HitHistory::new(&cfg);
        let p = sha1(b"gone");
        h.record(sha1(b"a"), p, 7, false, 0);
        h.record(sha1(b"b"), p, 7, false, 0);
        h.forget_peer(&p);
        assert!(h.warm_peers(&sha1(b"a"), 0).is_empty());
        assert!(h.warm_peers(&sha1(b"b"), 0).is_empty());
    }
}
