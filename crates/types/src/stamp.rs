//! Origin-stamped write versions.
//!
//! A [`VersionStamp`] is minted once, at the node that coordinates a
//! write, and travels with the write to every holder. Two stamps compare
//! exactly — `(seq, writer)` lexicographically — no matter which holder
//! reports them, which is what makes cross-holder freshness comparisons
//! (`FreshnessBook::admits`, stale-drop, monotone-serve) sound. The old
//! per-holder `u64` counters could only be compared against the *same*
//! holder's previous report; any cross-holder comparison was a guess.
//!
//! `seq` is a Lamport clock: each node folds the highest `seq` it has
//! *observed* (in digests, replies, and incoming writes) into its own
//! counter and mints with `observed_max + 1`. Ties between concurrent
//! writers are broken by the writer id, so the order is total.

use bytes::{Bytes, BytesMut};

use crate::error::Result;
use crate::id::{Id160, ID160_BYTES};
use crate::wire::{varint_len, ReadBytes, WireDecode, WireEncode, WriteBytes};

/// An origin-stamped write version, totally ordered by `(seq, writer)`.
///
/// The default value (`seq = 0`, all-zero writer) is the "never written"
/// floor: every minted stamp has `seq >= 1` and therefore compares above
/// it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VersionStamp {
    /// Lamport sequence number minted at the write's origin (compared
    /// first, so later writes order above everything they causally saw).
    pub seq: u64,
    /// Node id of the write's origin (the tie-breaker for concurrent
    /// writes with equal `seq`).
    pub writer: Id160,
}

impl VersionStamp {
    /// The "never written" floor stamp.
    pub const ZERO: VersionStamp = VersionStamp {
        seq: 0,
        writer: Id160::ZERO,
    };

    /// Builds a stamp from its parts.
    pub fn new(seq: u64, writer: Id160) -> Self {
        VersionStamp { seq, writer }
    }

    /// True for the never-written floor.
    pub fn is_zero(&self) -> bool {
        *self == VersionStamp::ZERO
    }
}

impl std::fmt::Debug for VersionStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `seq@writer-prefix` keeps assert messages readable.
        write!(
            f,
            "{}@{:02x}{:02x}",
            self.seq, self.writer.0[0], self.writer.0[1]
        )
    }
}

impl WireEncode for VersionStamp {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(self.seq);
        buf.put_id(&self.writer);
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.seq) + ID160_BYTES
    }
}

impl WireDecode for VersionStamp {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let seq = buf.get_varint()?;
        let writer = buf.get_id()?;
        Ok(VersionStamp { seq, writer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1;

    #[test]
    fn orders_by_seq_then_writer() {
        let a = sha1(b"a");
        let b = sha1(b"b");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(
            VersionStamp::new(1, hi) < VersionStamp::new(2, lo),
            "seq wins"
        );
        assert!(
            VersionStamp::new(3, lo) < VersionStamp::new(3, hi),
            "writer breaks ties"
        );
        assert_eq!(VersionStamp::new(3, lo), VersionStamp::new(3, lo));
        assert!(
            VersionStamp::ZERO < VersionStamp::new(1, lo),
            "floor is below every mint"
        );
        assert!(VersionStamp::default().is_zero());
    }

    #[test]
    fn wire_roundtrip_and_len() {
        for stamp in [
            VersionStamp::ZERO,
            VersionStamp::new(1, sha1(b"w")),
            VersionStamp::new(u64::MAX, sha1(b"x")),
            VersionStamp::new(0x0102_0304, sha1(b"y")),
        ] {
            let enc = stamp.encode_to_bytes();
            assert_eq!(enc.len(), stamp.encoded_len());
            assert_eq!(VersionStamp::decode_exact(&enc).unwrap(), stamp);
        }
    }

    #[test]
    fn truncated_stamp_fails_cleanly() {
        let enc = VersionStamp::new(300, sha1(b"w")).encode_to_bytes();
        for cut in 0..enc.len() {
            assert!(
                VersionStamp::decode_exact(&enc[..cut]).is_err(),
                "prefix {cut}"
            );
        }
    }
}
