//! Error types shared across the DHARMA crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DharmaError>;

/// Errors surfaced by the DHARMA stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DharmaError {
    /// A wire message could not be decoded.
    Decode(String),
    /// A message exceeded the transport MTU and was rejected.
    PayloadTooLarge {
        /// Encoded size of the offending message.
        size: usize,
        /// Transport MTU.
        mtu: usize,
    },
    /// An overlay lookup found no value and no closer nodes.
    NotFound(String),
    /// An RPC timed out.
    Timeout(String),
    /// The node an operation was bound to is unreachable — crashed,
    /// suspended, or departed. Unlike [`DharmaError::Timeout`], retrying
    /// against the same node cannot help; callers should rebind first.
    NodeUnavailable(String),
    /// A signature or certificate failed verification.
    Unauthorized(String),
    /// The operation conflicts with protocol state (e.g. unknown node).
    Protocol(String),
    /// Input violated an API precondition.
    InvalidArgument(String),
    /// An I/O error (UDP transport, dataset files).
    Io(String),
    /// A session-consistency read could not be satisfied: even the
    /// authoritative re-read returned a version below the client's
    /// session floor for the key. The overlay has not (yet) converged on
    /// a write this session already observed — retrying later, or against
    /// a different home node, may succeed.
    StaleRead(String),
}

impl fmt::Display for DharmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DharmaError::Decode(m) => write!(f, "decode error: {m}"),
            DharmaError::PayloadTooLarge { size, mtu } => {
                write!(f, "payload of {size} bytes exceeds MTU of {mtu} bytes")
            }
            DharmaError::NotFound(m) => write!(f, "not found: {m}"),
            DharmaError::Timeout(m) => write!(f, "timeout: {m}"),
            DharmaError::NodeUnavailable(m) => write!(f, "node unavailable: {m}"),
            DharmaError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            DharmaError::Protocol(m) => write!(f, "protocol error: {m}"),
            DharmaError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DharmaError::Io(m) => write!(f, "io error: {m}"),
            DharmaError::StaleRead(m) => write!(f, "stale read: {m}"),
        }
    }
}

impl std::error::Error for DharmaError {}

impl From<std::io::Error> for DharmaError {
    fn from(e: std::io::Error) -> Self {
        DharmaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DharmaError::PayloadTooLarge {
            size: 2000,
            mtu: 1400,
        };
        assert!(e.to_string().contains("2000"));
        assert!(e.to_string().contains("1400"));
        let e = DharmaError::Timeout("FIND_NODE".into());
        assert!(e.to_string().contains("FIND_NODE"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let e: DharmaError = io.into();
        assert!(matches!(e, DharmaError::Io(_)));
    }
}
