//! Shared primitives for the DHARMA stack.
//!
//! This crate contains the foundation every other crate builds on:
//!
//! * [`Id160`] — the 160-bit identifier used for overlay node ids and storage
//!   keys, with the XOR metric of Kademlia (Maymounkov & Mazières, 2002).
//! * [`sha1()`] — a from-scratch SHA-1 implementation (FIPS 180-1). Kademlia and
//!   the paper's block-key scheme (`H(name ‖ type)`) are defined over a
//!   160-bit hash, and SHA-1 is the hash the original systems used.
//! * [`hmac`] — HMAC-SHA1, used by the Likir-style identity layer
//!   (`dharma-likir`) to sign RPC envelopes and content records.
//! * [`wire`] — a small, explicit binary codec over [`bytes`], used for every
//!   overlay message so that UDP payload sizes can be accounted for exactly.
//! * [`BlockType`] / [`block_key`] — the DHARMA keyspace mapping of paper
//!   §IV-A: four block types (`r̄`, `t̄`, `t̂`, `r̃`) keyed by
//!   `H(name ‖ type-label)`.
//!
//! Everything here is dependency-light and deterministic; randomness is only
//! ever drawn from caller-provided [`rand::Rng`] instances so that whole-system
//! simulations are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fx;
pub mod hex;
pub mod hmac;
pub mod id;
pub mod intern;
pub mod keys;
pub mod sha1;
pub mod stamp;
pub mod wire;

pub use error::{DharmaError, Result};
pub use fx::{FxHashMap, FxHashSet};
pub use id::{Distance, Id160, ID160_BITS, ID160_BYTES};
pub use intern::{KeyInterner, Kid, NameInterner, Sym};
pub use keys::{block_key, node_id_for_user, BlockType};
pub use sha1::{sha1, Sha1};
pub use stamp::VersionStamp;
pub use wire::{ReadBytes, WireDecode, WireEncode, WriteBytes};
