//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! Kademlia's identifier space and the paper's block-key scheme
//! (`key = H(name ‖ type)`) are defined over a 160-bit hash; SHA-1 is the
//! hash function the original Kademlia and Likir deployments used. We
//! implement it here rather than pulling a crypto dependency: the DHT needs
//! *uniform key dispersion*, not collision resistance against adversaries
//! (and the identity layer's threat model is documented in `dharma-likir`).
//!
//! The implementation is the straightforward 80-round compression function
//! with incremental (streaming) input, so large values can be hashed without
//! buffering.

use crate::id::{Id160, ID160_BYTES};

/// Incremental SHA-1 hasher.
///
/// ```
/// use dharma_types::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        // Fill a partially filled block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        // Stash the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consumes the hasher and returns the 160-bit digest.
    pub fn finalize(mut self) -> Id160 {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
            // `update` adjusts self.len, but we already captured bit_len.
        }
        let mut lenb = [0u8; 8];
        lenb.copy_from_slice(&bit_len.to_be_bytes());
        self.update(&lenb);
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; ID160_BYTES];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Id160(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Id160 {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn known_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha1(input).to_hex(), *expect, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Split at many awkward boundaries relative to the 64-byte block size.
        for split in [0usize, 1, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn three_way_split_equals_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        for a in [0usize, 10, 64, 128] {
            for b in [a, a + 1, a + 63, 300] {
                let b = b.min(300);
                let mut h = Sha1::new();
                h.update(&data[..a]);
                h.update(&data[a..b]);
                h.update(&data[b..]);
                assert_eq!(h.finalize(), sha1(&data));
            }
        }
    }

    #[test]
    fn length_boundary_paddings() {
        // Messages of length 55, 56, 57, 63, 64, 65 exercise every padding path.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xa5u8; len];
            // Compare against a simple reference: re-hash with a different
            // chunking; identical digests across chunkings means the padding
            // logic is self-consistent, and the known vectors pin correctness.
            let mut h = Sha1::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), sha1(&data), "len {len}");
        }
    }
}
