//! A small, explicit binary codec over [`bytes`].
//!
//! Every overlay message in the DHARMA stack is encoded through these traits
//! so that the *exact* UDP payload size of each message is known — the paper's
//! index-side filtering exists precisely because "overlay messages are sent on
//! UDP packets, the limited payload force to send only a subset of tags and
//! resources" (§V-A). A self-describing format like JSON would make payload
//! accounting fuzzy; a fixed binary layout keeps it exact.
//!
//! Layout conventions:
//! * integers are unsigned LEB128 varints (`put_varint`) unless fixed width is
//!   structurally required;
//! * strings and byte strings are length-prefixed (varint);
//! * sequences are length-prefixed (varint) followed by the elements;
//! * [`Id160`] is 20 raw bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DharmaError, Result};
use crate::id::{Id160, ID160_BYTES};

/// Maximum accepted length for any length-prefixed field, as a defence
/// against maliciously huge prefixes in decoded input.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Types that can append themselves to a byte buffer.
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encodes into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Exact size in bytes of the encoding (default: encode and measure;
    /// implementors on hot paths may override with an arithmetic version).
    fn encoded_len(&self) -> usize {
        self.encode_to_bytes().len()
    }
}

/// Types that can be parsed back out of a byte buffer.
pub trait WireDecode: Sized {
    /// Consumes the encoding of `Self` from the front of `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self>;

    /// Decodes from a slice, requiring the input to be fully consumed.
    fn decode_exact(data: &[u8]) -> Result<Self> {
        let mut bytes = Bytes::copy_from_slice(data);
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DharmaError::Decode(format!(
                "{} trailing bytes after message",
                bytes.len()
            )));
        }
        Ok(v)
    }
}

/// Buffer-writing helpers (varints, strings, ids).
pub trait WriteBytes {
    /// Writes an unsigned LEB128 varint.
    fn put_varint(&mut self, v: u64);
    /// Writes a length-prefixed UTF-8 string.
    fn put_str(&mut self, s: &str);
    /// Writes a length-prefixed byte string.
    fn put_bytes_field(&mut self, b: &[u8]);
    /// Writes a raw 160-bit id (20 bytes).
    fn put_id(&mut self, id: &Id160);
}

impl WriteBytes for BytesMut {
    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.put_u8(byte);
                return;
            }
            self.put_u8(byte | 0x80);
        }
    }

    fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.put_slice(s.as_bytes());
    }

    fn put_bytes_field(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.put_slice(b);
    }

    fn put_id(&mut self, id: &Id160) {
        self.put_slice(id.as_bytes());
    }
}

/// Buffer-reading helpers mirroring [`WriteBytes`].
pub trait ReadBytes {
    /// Reads an unsigned LEB128 varint.
    fn get_varint(&mut self) -> Result<u64>;
    /// Reads a length-prefixed UTF-8 string.
    fn get_str(&mut self) -> Result<String>;
    /// Reads a length-prefixed byte string.
    fn get_bytes_field(&mut self) -> Result<Vec<u8>>;
    /// Reads a raw 160-bit id.
    fn get_id(&mut self) -> Result<Id160>;
    /// Reads a length prefix, validating it against remaining input.
    fn get_len(&mut self) -> Result<usize>;
}

impl ReadBytes for Bytes {
    fn get_varint(&mut self) -> Result<u64> {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            if !self.has_remaining() {
                return Err(DharmaError::Decode("truncated varint".into()));
            }
            let byte = self.get_u8();
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DharmaError::Decode("varint overflows u64".into()));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn get_len(&mut self) -> Result<usize> {
        let len = self.get_varint()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(DharmaError::Decode(format!("field length {len} too large")));
        }
        if len > self.remaining() {
            return Err(DharmaError::Decode(format!(
                "field length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }

    fn get_str(&mut self) -> Result<String> {
        let len = self.get_len()?;
        let raw = self.split_to(len);
        String::from_utf8(raw.to_vec())
            .map_err(|_| DharmaError::Decode("invalid utf-8 in string field".into()))
    }

    fn get_bytes_field(&mut self) -> Result<Vec<u8>> {
        let len = self.get_len()?;
        Ok(self.split_to(len).to_vec())
    }

    fn get_id(&mut self) -> Result<Id160> {
        if self.remaining() < ID160_BYTES {
            return Err(DharmaError::Decode("truncated id".into()));
        }
        let mut arr = [0u8; ID160_BYTES];
        self.copy_to_slice(&mut arr);
        Ok(Id160(arr))
    }
}

/// Exact encoded size of a varint — handy for arithmetic `encoded_len`s.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7)
}

impl WireEncode for Id160 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_id(self);
    }

    fn encoded_len(&self) -> usize {
        ID160_BYTES
    }
}

impl WireDecode for Id160 {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        buf.get_id()
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_str(self);
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl WireDecode for String {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        buf.get_str()
    }
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(*self);
    }

    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl WireDecode for u64 {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        buf.get_varint()
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let len = buf.get_varint()? as usize;
        // Guard against hostile prefixes: each element consumes ≥ 1 byte.
        if len > buf.remaining() {
            return Err(DharmaError::Decode(format!(
                "sequence length {len} exceeds remaining {} bytes",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in values {
            buf.clear();
            buf.put_varint(v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            let mut bytes = buf.clone().freeze();
            assert_eq!(bytes.get_varint().unwrap(), v);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut b = Bytes::from_static(&[0x80]);
        assert!(b.get_varint().is_err());
        // 11 continuation bytes overflow u64.
        let mut b = Bytes::from_static(&[
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ]);
        assert!(b.get_varint().is_err());
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_str("heavy-metal ✓");
        let mut b = buf.freeze();
        assert_eq!(b.get_str().unwrap(), "heavy-metal ✓");
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = BytesMut::new();
        buf.put_bytes_field(&[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert!(b.get_str().is_err());
    }

    #[test]
    fn length_prefix_cannot_exceed_remaining() {
        let mut buf = BytesMut::new();
        buf.put_varint(1000);
        buf.put_slice(b"short");
        let mut b = buf.freeze();
        assert!(b.get_bytes_field().is_err());
    }

    #[test]
    fn id_roundtrip() {
        let id = crate::sha1::sha1(b"x");
        let mut buf = BytesMut::new();
        buf.put_id(&id);
        let mut b = buf.freeze();
        assert_eq!(b.get_id().unwrap(), id);
    }

    #[test]
    fn vec_roundtrip_and_decode_exact() {
        let v: Vec<u64> = vec![0, 5, 300, 1 << 40];
        let enc = v.encode_to_bytes();
        let dec = Vec::<u64>::decode_exact(&enc).unwrap();
        assert_eq!(v, dec);
        // Trailing garbage must be rejected by decode_exact.
        let mut with_garbage = enc.to_vec();
        with_garbage.push(0);
        assert!(Vec::<u64>::decode_exact(&with_garbage).is_err());
    }

    #[test]
    fn hostile_sequence_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_varint(u32::MAX as u64); // absurd element count
        let mut b = buf.freeze();
        assert!(Vec::<u64>::decode(&mut b).is_err());
    }

    #[test]
    fn encoded_len_matches_actual_for_strings() {
        for s in ["", "a", "rock", &"x".repeat(200)] {
            let s = s.to_string();
            assert_eq!(s.encoded_len(), s.encode_to_bytes().len());
        }
    }
}
