//! Interning tables for the two identifier kinds the node state is full of:
//! entry names (tag strings) and [`Id160`] storage keys.
//!
//! At simulation scale (10⁴–10⁵ nodes) the dominant RAM cost of a node is
//! its record storage, and the dominant cost of a record is the repeated
//! identifier material: the same tag names recur across thousands of
//! entries, and the same block keys recur across replica sets, caches and
//! per-key statistics. Interning replaces each repeat with a 4-byte handle
//! into a table that stores the identifier once.
//!
//! Both tables use a hash-chain index (`FxHash → candidate ids`) instead of
//! a `HashMap<owned key, id>` so the identifier bytes are stored exactly
//! once, in the resolve table. Handles are dense indices: allocation order
//! is insertion order, which keeps resolution a bounds-checked array load
//! and makes the tables trivially serializable.

use crate::fx::FxHashMap;
use crate::id::Id160;
use std::hash::Hasher;

/// An interned string handle (index into a [`NameInterner`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense table index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned [`Id160`] handle (index into a [`KeyInterner`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kid(u32);

impl Kid {
    /// The dense table index of this key handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = crate::fx::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// A string interner: each distinct name is stored once, handles are
/// [`Sym`]s in insertion order.
#[derive(Clone, Debug, Default)]
pub struct NameInterner {
    /// FxHash of a name → table indices of names with that hash.
    buckets: FxHashMap<u64, Vec<u32>>,
    names: Vec<Box<str>>,
}

impl NameInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the handle of `name`, inserting it on first sight.
    pub fn intern(&mut self, name: &str) -> Sym {
        let h = fx_hash_bytes(name.as_bytes());
        let chain = self.buckets.entry(h).or_default();
        for &ix in chain.iter() {
            if &*self.names[ix as usize] == name {
                return Sym(ix);
            }
        }
        let ix = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.into());
        chain.push(ix);
        Sym(ix)
    }

    /// Returns the handle of `name` if it was interned before.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        let h = fx_hash_bytes(name.as_bytes());
        let chain = self.buckets.get(&h)?;
        chain
            .iter()
            .find(|&&ix| &*self.names[ix as usize] == name)
            .map(|&ix| Sym(ix))
    }

    /// The name behind a handle.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate heap bytes held by the table (name bytes + index).
    pub fn heap_bytes(&self) -> usize {
        let names: usize = self
            .names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<Box<str>>())
            .sum();
        let index = self.buckets.len()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
            + self.names.len() * std::mem::size_of::<u32>();
        names + index
    }
}

/// An [`Id160`] interner: each distinct key is stored once (20 bytes),
/// handles are [`Kid`]s in insertion order.
#[derive(Clone, Debug, Default)]
pub struct KeyInterner {
    buckets: FxHashMap<u64, Vec<u32>>,
    keys: Vec<Id160>,
}

impl KeyInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the handle of `key`, inserting it on first sight.
    pub fn intern(&mut self, key: &Id160) -> Kid {
        let h = fx_hash_bytes(key.as_bytes());
        let chain = self.buckets.entry(h).or_default();
        for &ix in chain.iter() {
            if self.keys[ix as usize] == *key {
                return Kid(ix);
            }
        }
        let ix = u32::try_from(self.keys.len()).expect("interner overflow");
        self.keys.push(*key);
        chain.push(ix);
        Kid(ix)
    }

    /// Returns the handle of `key` if it was interned before.
    pub fn lookup(&self, key: &Id160) -> Option<Kid> {
        let h = fx_hash_bytes(key.as_bytes());
        let chain = self.buckets.get(&h)?;
        chain
            .iter()
            .find(|&&ix| self.keys[ix as usize] == *key)
            .map(|&ix| Kid(ix))
    }

    /// The key behind a handle.
    pub fn resolve(&self, kid: Kid) -> &Id160 {
        &self.keys[kid.index()]
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_dedupe_and_resolve() {
        let mut t = NameInterner::new();
        let a = t.intern("rock");
        let b = t.intern("jazz");
        let a2 = t.intern("rock");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "rock");
        assert_eq!(t.resolve(b), "jazz");
        assert_eq!(t.lookup("rock"), Some(a));
        assert_eq!(t.lookup("metal"), None);
        assert!(!t.is_empty());
        assert!(t.heap_bytes() > 0);
    }

    #[test]
    fn names_survive_many_inserts_with_collisions() {
        // Thousands of short names: exercises bucket chains and checks the
        // handle ↔ name bijection end-to-end.
        let mut t = NameInterner::new();
        let names: Vec<String> = (0..5_000).map(|i| format!("tag-{i}")).collect();
        let syms: Vec<Sym> = names.iter().map(|n| t.intern(n)).collect();
        assert_eq!(t.len(), names.len());
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(t.resolve(*s), n.as_str());
            assert_eq!(t.lookup(n), Some(*s));
            assert_eq!(t.intern(n), *s, "re-intern must not grow the table");
        }
        assert_eq!(t.len(), names.len());
    }

    #[test]
    fn empty_and_unusual_names_are_distinct() {
        let mut t = NameInterner::new();
        let empty = t.intern("");
        let nul = t.intern("\0");
        let spaced = t.intern(" ");
        assert_eq!(t.len(), 3);
        assert_ne!(empty, nul);
        assert_ne!(nul, spaced);
        assert_eq!(t.resolve(empty), "");
    }

    #[test]
    fn keys_dedupe_and_resolve() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut t = KeyInterner::new();
        let keys: Vec<Id160> = (0..2_000).map(|_| Id160::random(&mut rng)).collect();
        let kids: Vec<Kid> = keys.iter().map(|k| t.intern(k)).collect();
        assert_eq!(t.len(), keys.len());
        for (k, kid) in keys.iter().zip(&kids) {
            assert_eq!(t.resolve(*kid), k);
            assert_eq!(t.lookup(k), Some(*kid));
            assert_eq!(t.intern(k), *kid);
        }
        let other = Id160::random(&mut rng);
        assert_eq!(t.lookup(&other), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_are_dense_insertion_order() {
        let mut t = NameInterner::new();
        for i in 0..100usize {
            let s = t.intern(&format!("n{i}"));
            assert_eq!(s.index(), i, "handles are dense and ordered");
        }
        let mut k = KeyInterner::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..100usize {
            let kid = k.intern(&Id160::random(&mut rng));
            assert_eq!(kid.index(), i);
        }
    }
}
