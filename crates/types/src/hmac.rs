//! HMAC-SHA1 (RFC 2104).
//!
//! Used by the Likir-style identity layer (`dharma-likir`) as the signing
//! primitive. The original Likir uses RSA signatures; DESIGN.md documents why
//! a keyed MAC is a behaviour-preserving substitute for this reproduction
//! (identical message structure and verification outcomes; only the
//! public-key property is dropped, which no experiment depends on).

use crate::id::{Id160, ID160_BYTES};
use crate::sha1::Sha1;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA1(key, message)`.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> Id160 {
    // Keys longer than the block size are hashed first, per RFC 2104.
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = crate::sha1::sha1(key);
        key_block[..ID160_BYTES].copy_from_slice(digest.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha1::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha1::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Constant-time equality of two digests.
///
/// The simulator is not actually attackable through timing, but verification
/// code should model good practice.
pub fn verify_hmac_sha1(key: &[u8], message: &[u8], tag: &Id160) -> bool {
    let expect = hmac_sha1(key, message);
    let mut diff = 0u8;
    for (a, b) in expect.as_bytes().iter().zip(tag.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_vectors() {
        let cases: &[(&[u8], &[u8], &str)] = &[
            (
                &[0x0b; 20],
                b"Hi There",
                "b617318655057264e28bc0b6fb378c8ef146be00",
            ),
            (
                b"Jefe",
                b"what do ya want for nothing?",
                "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
            ),
            (
                &[0xaa; 20],
                &[0xdd; 50],
                "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
            ),
            (
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First",
                "aa4ae5e15272d00e95705637ce8a3b55ed402112",
            ),
        ];
        for (key, msg, expect) in cases {
            assert_eq!(hmac_sha1(key, msg).to_hex(), *expect);
        }
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha1(b"key", b"msg");
        assert!(verify_hmac_sha1(b"key", b"msg", &tag));
        assert!(!verify_hmac_sha1(b"key", b"msg2", &tag));
        assert!(!verify_hmac_sha1(b"key2", b"msg", &tag));
        let mut wrong = tag;
        wrong.0[0] ^= 1;
        assert!(!verify_hmac_sha1(b"key", b"msg", &wrong));
    }
}
