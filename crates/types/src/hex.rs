//! Minimal hex encoding/decoding (lowercase), used for ids and digests.

/// Encodes `bytes` as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string (either case). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = digit(pair[0])?;
        let lo = digit(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn digit(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0x7f, 0x80, 0xff, 0xab];
        let s = encode(&data);
        assert_eq!(s, "00017f80ffab");
        assert_eq!(decode(&s).unwrap(), data);
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("ABCDEF").unwrap(), [0xab, 0xcd, 0xef]);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), None);
        assert_eq!(decode("zz"), None);
        assert_eq!(decode("0g"), None);
    }

    #[test]
    fn empty_ok() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
