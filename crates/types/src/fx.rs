//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The folksonomy graphs are hashmap-heavy (hundreds of thousands of tags,
//! millions of arcs); SipHash's DoS resistance buys nothing in a simulator
//! and costs real time. This is the well-known `FxHash` function used by
//! rustc (multiply-xor over machine words), reimplemented here to stay within
//! the offline dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's FxHash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn hash_distinguishes_lengths() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = bh.hash_one([1u8].as_slice());
        let h2 = bh.hash_one([1u8, 0].as_slice());
        assert_ne!(h1, h2);
    }

    #[test]
    fn set_dedupes() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
