//! 160-bit identifiers and the Kademlia XOR metric.
//!
//! [`Id160`] is used both for overlay node identifiers and for storage keys;
//! Kademlia deliberately draws them from the same space so that "closeness"
//! between a node and a key is well defined. The XOR metric
//! `d(x, y) = x ⊕ y` is symmetric, satisfies the triangle inequality, and is
//! unidirectional: for any point `x` and distance `Δ` there is exactly one
//! point `y` with `d(x, y) = Δ`.

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

use crate::hex;

/// Number of bits in an identifier.
pub const ID160_BITS: usize = 160;
/// Number of bytes in an identifier.
pub const ID160_BYTES: usize = 20;

/// A 160-bit identifier (node id or storage key), big-endian byte order.
///
/// The identifier space is the one SHA-1 hashes into; see
/// [`crate::block_key`] for how DHARMA names are mapped onto it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Id160(pub [u8; ID160_BYTES]);

impl Id160 {
    /// The all-zero identifier.
    pub const ZERO: Id160 = Id160([0u8; ID160_BYTES]);

    /// The all-ones identifier (maximum value).
    pub const MAX: Id160 = Id160([0xffu8; ID160_BYTES]);

    /// Builds an identifier from raw bytes.
    pub const fn from_bytes(bytes: [u8; ID160_BYTES]) -> Self {
        Id160(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; ID160_BYTES] {
        &self.0
    }

    /// Draws a uniformly random identifier from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; ID160_BYTES];
        rng.fill_bytes(&mut bytes);
        Id160(bytes)
    }

    /// Draws a random identifier that shares exactly `prefix_len` leading bits
    /// with `self` (and differs at bit `prefix_len`).
    ///
    /// Used by Kademlia bucket-refresh: to refresh bucket `i` a node looks up
    /// a random id at distance `2^(159-i) ..= 2^(160-i)-1` from itself.
    pub fn random_with_prefix<R: Rng + ?Sized>(&self, prefix_len: usize, rng: &mut R) -> Self {
        assert!(
            prefix_len < ID160_BITS,
            "prefix must leave at least one free bit"
        );
        let mut out = Id160::random(rng);
        // Copy the shared prefix from `self`.
        let whole = prefix_len / 8;
        out.0[..whole].copy_from_slice(&self.0[..whole]);
        let rem = prefix_len % 8;
        if rem != 0 {
            let mask: u8 = 0xff << (8 - rem);
            out.0[whole] = (self.0[whole] & mask) | (out.0[whole] & !mask);
        }
        // Force the bit right after the prefix to differ.
        let byte = prefix_len / 8;
        let bit = 7 - (prefix_len % 8);
        let flip = 1u8 << bit;
        if self.0[byte] & flip == 0 {
            out.0[byte] |= flip;
        } else {
            out.0[byte] &= !flip;
        }
        out
    }

    /// XOR distance to `other`.
    pub fn distance(&self, other: &Id160) -> Distance {
        let mut d = [0u8; ID160_BYTES];
        for (i, b) in d.iter_mut().enumerate() {
            *b = self.0[i] ^ other.0[i];
        }
        Distance(Id160(d))
    }

    /// Returns the value of bit `i` (0 = most significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < ID160_BITS);
        let byte = i / 8;
        let bit = 7 - (i % 8);
        (self.0[byte] >> bit) & 1 == 1
    }

    /// Flips bit `i` (0 = most significant) and returns the new id.
    pub fn with_flipped_bit(mut self, i: usize) -> Self {
        debug_assert!(i < ID160_BITS);
        let byte = i / 8;
        let bit = 7 - (i % 8);
        self.0[byte] ^= 1 << bit;
        self
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(&self) -> usize {
        let mut n = 0usize;
        for b in &self.0 {
            if *b == 0 {
                n += 8;
            } else {
                n += b.leading_zeros() as usize;
                break;
            }
        }
        n
    }

    /// Hex string of the full identifier (40 lowercase hex digits).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parses a 40-digit hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = hex::decode(s)?;
        if bytes.len() != ID160_BYTES {
            return None;
        }
        let mut arr = [0u8; ID160_BYTES];
        arr.copy_from_slice(&bytes);
        Some(Id160(arr))
    }
}

impl fmt::Debug for Id160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviate: the first 8 hex digits identify a node in logs well enough.
        write!(f, "Id160({}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Id160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; ID160_BYTES]> for Id160 {
    fn from(bytes: [u8; ID160_BYTES]) -> Self {
        Id160(bytes)
    }
}

/// An XOR distance between two identifiers.
///
/// Wrapping the distance in its own type prevents accidentally mixing up ids
/// and distances — a classic source of Kademlia bugs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Distance(pub Id160);

impl Distance {
    /// Distance zero (an id's distance to itself).
    pub const ZERO: Distance = Distance(Id160::ZERO);

    /// The Kademlia bucket index this distance falls into: the index of the
    /// highest set bit, i.e. `floor(log2(d))`, or `None` for distance zero.
    ///
    /// Bucket `i` (with `i` counted from 0 = most significant) covers
    /// distances in `[2^(159-i), 2^(160-i))`.
    pub fn bucket_index(&self) -> Option<usize> {
        let lz = self.0.leading_zeros();
        if lz == ID160_BITS {
            None
        } else {
            Some(lz)
        }
    }

    /// `floor(log2(distance))`, or `None` for zero distance.
    pub fn log2_floor(&self) -> Option<usize> {
        self.bucket_index().map(|b| ID160_BITS - 1 - b)
    }

    /// Raw distance bits.
    pub const fn as_id(&self) -> &Id160 {
        &self.0
    }
}

impl PartialOrd for Distance {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Distance {
    fn cmp(&self, other: &Self) -> Ordering {
        // Big-endian byte order makes lexicographic comparison numeric.
        self.0 .0.cmp(&other.0 .0)
    }
}

impl fmt::Debug for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.log2_floor() {
            Some(l) => write!(f, "Distance(~2^{l})"),
            None => write!(f, "Distance(0)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(byte: u8) -> Id160 {
        Id160([byte; ID160_BYTES])
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = id(0xab);
        assert_eq!(a.distance(&a), Distance::ZERO);
        assert_eq!(a.distance(&a).bucket_index(), None);
    }

    #[test]
    fn distance_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let a = Id160::random(&mut rng);
            let b = Id160::random(&mut rng);
            assert_eq!(a.distance(&b), b.distance(&a));
        }
    }

    #[test]
    fn xor_triangle_inequality() {
        // d(a,c) <= d(a,b) xor-add d(b,c); for XOR metric equality holds as
        // d(a,c) = d(a,b) ^ d(b,c), and numeric <= holds for the sum.
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..256 {
            let a = Id160::random(&mut rng);
            let b = Id160::random(&mut rng);
            let c = Id160::random(&mut rng);
            let ab = a.distance(&b).0;
            let bc = b.distance(&c).0;
            let ac = a.distance(&c).0;
            let mut xor = [0u8; ID160_BYTES];
            for (i, x) in xor.iter_mut().enumerate() {
                *x = ab.0[i] ^ bc.0[i];
            }
            assert_eq!(ac.0, xor, "unidirectionality of xor metric");
        }
    }

    #[test]
    fn bucket_index_matches_leading_zeros() {
        let a = Id160::ZERO;
        let b = a.with_flipped_bit(0);
        assert_eq!(a.distance(&b).bucket_index(), Some(0));
        let c = a.with_flipped_bit(159);
        assert_eq!(a.distance(&c).bucket_index(), Some(159));
        assert_eq!(a.distance(&c).log2_floor(), Some(0));
    }

    #[test]
    fn bit_accessors_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Id160::random(&mut rng);
        for i in [0usize, 1, 7, 8, 9, 63, 64, 100, 159] {
            let flipped = a.with_flipped_bit(i);
            assert_ne!(a.bit(i), flipped.bit(i));
            assert_eq!(flipped.with_flipped_bit(i), a);
        }
    }

    #[test]
    fn random_with_prefix_shares_exact_prefix() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Id160::random(&mut rng);
        for prefix in [0usize, 1, 5, 8, 13, 64, 120, 159] {
            let b = a.random_with_prefix(prefix, &mut rng);
            for i in 0..prefix {
                assert_eq!(a.bit(i), b.bit(i), "prefix bit {i} must match");
            }
            assert_ne!(a.bit(prefix), b.bit(prefix), "bit {prefix} must differ");
            // Distance therefore falls exactly into bucket `prefix`.
            assert_eq!(a.distance(&b).bucket_index(), Some(prefix));
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let mut small = [0u8; ID160_BYTES];
        small[ID160_BYTES - 1] = 1;
        let mut big = [0u8; ID160_BYTES];
        big[0] = 1;
        assert!(Distance(Id160(small)) < Distance(Id160(big)));
        assert!(Distance(Id160::ZERO) < Distance(Id160(small)));
    }

    #[test]
    fn hex_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..16 {
            let a = Id160::random(&mut rng);
            assert_eq!(Id160::from_hex(&a.to_hex()), Some(a));
        }
        assert_eq!(Id160::from_hex("zz"), None);
        assert_eq!(Id160::from_hex("ab"), None); // too short
    }

    #[test]
    fn leading_zeros_counts() {
        assert_eq!(Id160::ZERO.leading_zeros(), 160);
        assert_eq!(Id160::MAX.leading_zeros(), 0);
        let one_low = {
            let mut b = [0u8; ID160_BYTES];
            b[ID160_BYTES - 1] = 1;
            Id160(b)
        };
        assert_eq!(one_low.leading_zeros(), 159);
    }
}
