//! The DHARMA keyspace mapping (paper §IV-A).
//!
//! The folksonomy is shredded into four kinds of *blocks*, each stored under a
//! DHT key derived from the human-readable name of its graph node concatenated
//! with a type label:
//!
//! | type | block | contents |
//! |---|---|---|
//! | 1 | `r̄` ([`BlockType::ResourceTags`]) | `{(t, u(t, r))}` for `t ∈ Tags(r)` |
//! | 2 | `t̄` ([`BlockType::TagResources`]) | `{(r, u(t, r))}` for `r ∈ Res(t)` |
//! | 3 | `t̂` ([`BlockType::TagNeighbors`]) | `{(t', sim(t, t'))}` for `t' ∈ N_FG(t)` |
//! | 4 | `r̃` ([`BlockType::ResourceUri`]) | `(r, URI(r))` |
//!
//! The key is `SHA1(name ‖ 0x00 ‖ label)`, e.g. `SHA1("rock" ‖ 0x00 ‖ "3")`
//! for the tag-neighbor block of tag *rock*. The `0x00` separator prevents
//! ambiguity between `("ab", "1")`-style name/label concatenations (e.g. a tag
//! literally named `rock1`).

use crate::id::Id160;
use crate::sha1::Sha1;

/// The four DHARMA block types of paper §IV-A.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BlockType {
    /// Type 1 — `r̄`: the tags of a resource with their `u(t, r)` weights.
    ResourceTags,
    /// Type 2 — `t̄`: the resources of a tag with their `u(t, r)` weights.
    TagResources,
    /// Type 3 — `t̂`: the folksonomy-graph neighbors of a tag with `sim` weights.
    TagNeighbors,
    /// Type 4 — `r̃`: the resource name → URI binding.
    ResourceUri,
}

impl BlockType {
    /// The label concatenated to the name when deriving the block key
    /// ("1".."4" as in the paper's example `hash(t|"2")`).
    pub const fn label(self) -> &'static str {
        match self {
            BlockType::ResourceTags => "1",
            BlockType::TagResources => "2",
            BlockType::TagNeighbors => "3",
            BlockType::ResourceUri => "4",
        }
    }

    /// Numeric code used on the wire.
    pub const fn code(self) -> u8 {
        match self {
            BlockType::ResourceTags => 1,
            BlockType::TagResources => 2,
            BlockType::TagNeighbors => 3,
            BlockType::ResourceUri => 4,
        }
    }

    /// Parses a wire code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(BlockType::ResourceTags),
            2 => Some(BlockType::TagResources),
            3 => Some(BlockType::TagNeighbors),
            4 => Some(BlockType::ResourceUri),
            _ => None,
        }
    }

    /// All four block types, in paper order.
    pub const ALL: [BlockType; 4] = [
        BlockType::ResourceTags,
        BlockType::TagResources,
        BlockType::TagNeighbors,
        BlockType::ResourceUri,
    ];
}

/// Derives the DHT key of a block: `SHA1(name ‖ 0x00 ‖ label)`.
pub fn block_key(name: &str, ty: BlockType) -> Id160 {
    let mut h = Sha1::new();
    h.update(name.as_bytes());
    h.update(&[0u8]);
    h.update(ty.label().as_bytes());
    h.finalize()
}

/// Derives a deterministic overlay node id for a user identity, as the
/// Likir layer does (`nodeId = H(userId)` bound by a CA certificate).
pub fn node_id_for_user(user_id: &str) -> Id160 {
    let mut h = Sha1::new();
    h.update(b"likir-node\x00");
    h.update(user_id.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn labels_and_codes_roundtrip() {
        for ty in BlockType::ALL {
            assert_eq!(BlockType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(BlockType::from_code(0), None);
        assert_eq!(BlockType::from_code(5), None);
    }

    #[test]
    fn block_keys_are_distinct_per_type() {
        let mut seen = HashSet::new();
        for ty in BlockType::ALL {
            assert!(seen.insert(block_key("rock", ty)));
        }
    }

    #[test]
    fn separator_prevents_concatenation_ambiguity() {
        // Without the 0x00 separator, ("rock1", type with empty label) could
        // collide with ("rock", "1"). The separator keys must differ.
        assert_ne!(
            block_key("rock1", BlockType::ResourceTags),
            block_key("rock", BlockType::ResourceTags)
        );
        assert_ne!(
            block_key("rock", BlockType::ResourceTags),
            block_key("rock", BlockType::TagResources)
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            block_key("heavy-metal", BlockType::TagNeighbors),
            block_key("heavy-metal", BlockType::TagNeighbors)
        );
        assert_eq!(node_id_for_user("alice"), node_id_for_user("alice"));
        assert_ne!(node_id_for_user("alice"), node_id_for_user("bob"));
    }
}
