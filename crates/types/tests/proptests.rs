//! Property-based tests for the foundation types.

use bytes::BytesMut;
use dharma_types::wire::varint_len;
use dharma_types::{sha1, Id160, ReadBytes, WireDecode, WireEncode, WriteBytes};
use proptest::prelude::*;

proptest! {
    /// SHA-1 is deterministic and always yields 20 bytes with the same
    /// digest irrespective of chunking.
    #[test]
    fn sha1_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let oneshot = sha1(&data);
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = dharma_types::Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Different inputs essentially never collide (sanity, not a security claim).
    #[test]
    fn sha1_distinguishes_inputs(a in proptest::collection::vec(any::<u8>(), 0..128),
                                 b in proptest::collection::vec(any::<u8>(), 0..128)) {
        if a != b {
            prop_assert_ne!(sha1(&a), sha1(&b));
        }
    }

    /// Varint roundtrip over the whole u64 range.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        buf.put_varint(v);
        prop_assert_eq!(buf.len(), varint_len(v));
        let mut bytes = buf.freeze();
        prop_assert_eq!(bytes.get_varint().unwrap(), v);
        prop_assert!(bytes.is_empty());
    }

    /// String fields roundtrip for arbitrary unicode.
    #[test]
    fn string_roundtrip(s in "\\PC{0,300}") {
        let mut buf = BytesMut::new();
        buf.put_str(&s);
        let mut bytes = buf.freeze();
        prop_assert_eq!(bytes.get_str().unwrap(), s);
    }

    /// Vec<u64> roundtrips through encode/decode_exact.
    #[test]
    fn vec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        let enc = v.encode_to_bytes();
        prop_assert_eq!(Vec::<u64>::decode_exact(&enc).unwrap(), v);
    }

    /// The decoder never panics on arbitrary garbage (it may error).
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Vec::<u64>::decode_exact(&data);
        let _ = String::decode_exact(&data);
        let _ = Id160::decode_exact(&data);
    }

    /// XOR metric: identity, symmetry, unidirectionality.
    #[test]
    fn xor_metric_axioms(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
        let a = Id160::from_bytes(a);
        let b = Id160::from_bytes(b);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert_eq!(a.distance(&a).bucket_index(), None);
        if a != b {
            prop_assert!(a.distance(&b) > dharma_types::Distance::ZERO);
        }
    }

    /// bucket_index is consistent with the definition via leading zeros.
    #[test]
    fn bucket_index_definition(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
        let a = Id160::from_bytes(a);
        let b = Id160::from_bytes(b);
        let d = a.distance(&b);
        if let Some(idx) = d.bucket_index() {
            prop_assert_eq!(d.0.leading_zeros(), idx);
            prop_assert!(d.0.bit(idx));
            for i in 0..idx {
                prop_assert!(!d.0.bit(i));
            }
        } else {
            prop_assert_eq!(a, b);
        }
    }
}
